//! Integration tests for the fault-injection and resilience layer:
//! wire-level faults (drop/stall/corrupt), instance-level faults (forced
//! panic, latency), the panic quarantine with both failure policies, the
//! convergence watchdog, and deterministic replay of the probe stream.

use liberty_core::prelude::*;

// ---------------------------------------------------------------- fixtures

/// Sends its cycle number every step.
struct Src;
impl Module for Src {
    fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
        ctx.send(PortId(0), 0, Value::Word(ctx.now()))
    }
    fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
        Ok(())
    }
}

/// Accepts everything; records the received words.
#[derive(Default)]
struct Sink {
    got: std::sync::Arc<std::sync::Mutex<Vec<u64>>>,
}
impl Module for Sink {
    fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
        ctx.set_ack(PortId(0), 0, true)
    }
    fn commit(&mut self, ctx: &mut CommitCtx<'_>) -> Result<(), SimError> {
        if let Some(v) = ctx.transferred_in(PortId(0), 0) {
            self.got
                .lock()
                .unwrap()
                .push(v.as_word().unwrap_or(u64::MAX));
        }
        Ok(())
    }
}

/// Panics inside `react` at a chosen cycle — a *real* unwind, exercising
/// the `catch_unwind` path rather than the plan-synthesized panic.
struct PanicsAt(u64);
impl Module for PanicsAt {
    fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
        if ctx.now() == self.0 {
            panic!("boom at {}", self.0);
        }
        ctx.send(PortId(0), 0, Value::Word(ctx.now()))
    }
    fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
        Ok(())
    }
}

/// Returns a structured error from `react` at a chosen cycle.
struct ErrsAt(u64);
impl Module for ErrsAt {
    fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
        if ctx.now() == self.0 {
            return Err(SimError::model("deliberate failure"));
        }
        ctx.send(PortId(0), 0, Value::Word(ctx.now()))
    }
    fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
        Ok(())
    }
}

/// A logical inverter with a self-loop: drives its output with the
/// negation of its own input, which can never reach a fixed point — the
/// canonical combinational loop the watchdog must catch.
struct SelfInverter;
impl Module for SelfInverter {
    fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
        match ctx.data(PortId(1), 0) {
            Res::Yes(v) => {
                let w = v.as_word().unwrap_or(0);
                ctx.set_data(PortId(0), 0, Res::Yes(Value::Word(1 - (w & 1))))
            }
            Res::No => ctx.set_data(PortId(0), 0, Res::Yes(Value::Word(1))),
            Res::Unknown => Ok(()),
        }
    }
    fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
        Ok(())
    }
}

fn src_sink() -> (Simulator, std::sync::Arc<std::sync::Mutex<Vec<u64>>>) {
    src_sink_with(SchedKind::Dynamic)
}

fn src_sink_with(sched: SchedKind) -> (Simulator, std::sync::Arc<std::sync::Mutex<Vec<u64>>>) {
    let got = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut b = NetlistBuilder::new();
    let s = b
        .add(
            "s",
            ModuleSpec::new("src").output("out", 1, 1),
            Box::new(Src),
        )
        .unwrap();
    let k = b
        .add(
            "k",
            ModuleSpec::new("sink").input("in", 1, 1),
            Box::new(Sink { got: got.clone() }),
        )
        .unwrap();
    b.connect(s, "out", k, "in").unwrap();
    (Simulator::new(b.build().unwrap(), sched), got)
}

// ------------------------------------------------------------ wire faults

#[test]
fn drop_data_suppresses_transfers_in_window() {
    let (mut sim, got) = src_sink();
    sim.set_fault_plan(FaultPlan::new(7).drop_wire(EdgeId(0), Wire::Data, 2, 5));
    sim.run(8).unwrap();
    // Steps 2,3,4 lose the data write; the default semantics resolve the
    // edge to "no data" and the handshake never completes.
    assert_eq!(*got.lock().unwrap(), vec![0, 1, 5, 6, 7]);
    assert_eq!(sim.metrics().faults_injected, 3);
    assert_eq!(sim.metrics().quarantines, 0);
}

#[test]
fn stall_ack_blocks_handshake_despite_data() {
    let (mut sim, got) = src_sink();
    sim.set_fault_plan(FaultPlan::new(7).stall_wire(EdgeId(0), Wire::Ack, 1, 3));
    sim.run(5).unwrap();
    // The sink acks every step, but the stall forces ack to No in [1,3).
    assert_eq!(*got.lock().unwrap(), vec![0, 3, 4]);
}

#[test]
fn corrupt_data_is_deterministic_and_differs() {
    let run = |seed: u64| {
        let (mut sim, got) = src_sink();
        sim.set_fault_plan(FaultPlan::new(seed).corrupt_wire(EdgeId(0), Wire::Data, 0, 4));
        sim.run(4).unwrap();
        let v = got.lock().unwrap().clone();
        v
    };
    let a = run(11);
    let b = run(11);
    let c = run(12);
    assert_eq!(a, b, "same seed replays identically");
    assert_ne!(a, vec![0, 1, 2, 3], "corruption changed the payloads");
    assert_ne!(a, c, "different seeds corrupt differently");
    assert_eq!(a.len(), 4, "corruption never blocks the handshake");
}

#[test]
fn fault_off_path_is_untouched() {
    let (mut sim, got) = src_sink();
    sim.run(4).unwrap();
    assert_eq!(*got.lock().unwrap(), vec![0, 1, 2, 3]);
    assert_eq!(sim.metrics().faults_injected, 0);
    assert!(sim.quarantined_instances().is_empty());
}

#[test]
fn empty_plan_matches_fault_off_results() {
    let (mut sim, got) = src_sink();
    sim.set_fault_plan(FaultPlan::new(3));
    sim.run(4).unwrap();
    assert_eq!(*got.lock().unwrap(), vec![0, 1, 2, 3]);
    assert_eq!(sim.metrics().faults_injected, 0);
}

// -------------------------------------------------------- instance faults

#[test]
fn forced_panic_aborts_by_default() {
    let (mut sim, _got) = src_sink();
    sim.set_fault_plan(FaultPlan::new(7).panic_at(InstanceId(0), 2));
    let err = sim.run(8).unwrap_err();
    let p = err.as_panic().expect("panic error");
    assert_eq!(p.instance, "s");
    assert_eq!(p.step, 2);
    assert!(p.message.contains("injected panic"), "{}", p.message);
}

#[test]
fn forced_panic_quarantines_under_policy() {
    let (mut sim, got) = src_sink();
    sim.set_fault_plan(FaultPlan::new(7).panic_at(InstanceId(0), 2));
    sim.set_failure_policy(FailurePolicy::Quarantine);
    sim.run(8).unwrap();
    // The source is isolated from step 2 on: its edge falls back to the
    // default "no data" semantics and the sink keeps running untouched.
    assert_eq!(*got.lock().unwrap(), vec![0, 1]);
    assert!(sim.is_quarantined(InstanceId(0)));
    assert!(!sim.is_quarantined(InstanceId(1)));
    assert_eq!(sim.quarantined_instances(), vec![InstanceId(0)]);
    assert_eq!(sim.metrics().quarantines, 1);
}

#[test]
fn real_panic_is_caught_and_quarantined() {
    let got = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut b = NetlistBuilder::new();
    let s = b
        .add(
            "bomb",
            ModuleSpec::new("src").output("out", 1, 1),
            Box::new(PanicsAt(3)),
        )
        .unwrap();
    let k = b
        .add(
            "k",
            ModuleSpec::new("sink").input("in", 1, 1),
            Box::new(Sink { got: got.clone() }),
        )
        .unwrap();
    b.connect(s, "out", k, "in").unwrap();
    let mut sim = Simulator::new(b.build().unwrap(), SchedKind::Dynamic);
    sim.set_failure_policy(FailurePolicy::Quarantine);
    // Silence the default panic hook for the expected unwind.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = sim.run(6);
    std::panic::set_hook(prev);
    r.unwrap();
    assert_eq!(*got.lock().unwrap(), vec![0, 1, 2]);
    assert!(sim.is_quarantined(InstanceId(0)));
    assert_eq!(sim.metrics().quarantines, 1);
}

#[test]
fn real_panic_aborts_with_message() {
    let mut b = NetlistBuilder::new();
    let s = b
        .add(
            "bomb",
            ModuleSpec::new("src").output("out", 1, 1),
            Box::new(PanicsAt(1)),
        )
        .unwrap();
    let k = b
        .add(
            "k",
            ModuleSpec::new("sink").input("in", 1, 1),
            Box::new(Sink::default()),
        )
        .unwrap();
    b.connect(s, "out", k, "in").unwrap();
    let mut sim = Simulator::new(b.build().unwrap(), SchedKind::Dynamic);
    // Any resilience feature (here: a watchdog) routes reactions through
    // the catch_unwind wrapper, so the panic becomes a structured error.
    sim.set_watchdog(1000);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = sim.run(4).unwrap_err();
    std::panic::set_hook(prev);
    let p = err.as_panic().expect("panic error");
    assert_eq!(p.instance, "bomb");
    assert_eq!(p.step, 1);
    assert!(p.message.contains("boom at 1"), "{}", p.message);
}

#[test]
fn react_error_quarantines_under_policy() {
    let got = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut b = NetlistBuilder::new();
    let s = b
        .add(
            "errs",
            ModuleSpec::new("src").output("out", 1, 1),
            Box::new(ErrsAt(2)),
        )
        .unwrap();
    let k = b
        .add(
            "k",
            ModuleSpec::new("sink").input("in", 1, 1),
            Box::new(Sink { got: got.clone() }),
        )
        .unwrap();
    b.connect(s, "out", k, "in").unwrap();
    let mut sim = Simulator::new(b.build().unwrap(), SchedKind::Dynamic);
    sim.set_failure_policy(FailurePolicy::Quarantine);
    sim.run(5).unwrap();
    assert_eq!(*got.lock().unwrap(), vec![0, 1]);
    assert!(sim.is_quarantined(InstanceId(0)));
}

#[test]
fn latency_fault_only_slows_the_step() {
    let (mut sim, got) = src_sink();
    sim.set_fault_plan(FaultPlan::new(7).latency(InstanceId(0), 1, 3, 1));
    sim.run(4).unwrap();
    assert_eq!(*got.lock().unwrap(), vec![0, 1, 2, 3]);
    assert_eq!(sim.metrics().faults_injected, 2);
}

// ---------------------------------------------------------------- watchdog

#[test]
fn watchdog_reports_divergence_with_oscillating_wires() {
    for sched in [SchedKind::Sweep, SchedKind::Dynamic, SchedKind::Static] {
        let mut b = NetlistBuilder::new();
        let inv = b
            .add(
                "inv",
                ModuleSpec::new("inverter")
                    .output("out", 1, 1)
                    .input("in", 1, 1),
                Box::new(SelfInverter),
            )
            .unwrap();
        b.connect(inv, "out", inv, "in").unwrap();
        let mut sim = Simulator::new(b.build().unwrap(), sched);
        sim.set_watchdog(64);
        let err = sim.run(4).unwrap_err();
        let d = err
            .as_divergence()
            .unwrap_or_else(|| panic!("{sched:?}: expected divergence, got {err}"));
        assert_eq!(d.step, 0, "{sched:?}");
        assert_eq!(d.limit, 64, "{sched:?}");
        assert!(d.iters > 64, "{sched:?}");
        assert!(
            d.oscillating
                .iter()
                .any(|w| w.edge == 0 && w.wire == "data"),
            "{sched:?}: {:?}",
            d.oscillating
        );
        assert!(d.oscillating[0].flips > 0, "{sched:?}");
        assert_eq!(d.cycle, vec!["inv".to_owned()], "{sched:?}");
        let msg = err.to_string();
        assert!(msg.contains("data"), "{msg}");
        assert!(msg.contains("inv"), "{msg}");
    }
}

#[test]
fn watchdog_leaves_converging_netlists_alone() {
    let (mut sim, got) = src_sink();
    sim.set_watchdog(1000);
    sim.run(4).unwrap();
    assert_eq!(*got.lock().unwrap(), vec![0, 1, 2, 3]);
}

#[test]
fn simulator_survives_a_divergence_error() {
    // After a structured failure the worklists are reset; a fresh netlist
    // run on the same simulator object must not trip debug assertions.
    let mut b = NetlistBuilder::new();
    let inv = b
        .add(
            "inv",
            ModuleSpec::new("inverter")
                .output("out", 1, 1)
                .input("in", 1, 1),
            Box::new(SelfInverter),
        )
        .unwrap();
    b.connect(inv, "out", inv, "in").unwrap();
    let mut sim = Simulator::new(b.build().unwrap(), SchedKind::Dynamic);
    sim.set_watchdog(16);
    assert!(sim.run(1).is_err());
    // The same step keeps failing deterministically, not hanging.
    assert!(sim.run(1).is_err());
}

// ----------------------------------------------------- probes and replay

#[test]
fn fault_and_quarantine_events_reach_probes() {
    let (mut sim, _got) = src_sink();
    let (probe, counts) = CountingProbe::new();
    sim.set_probe(Box::new(probe));
    sim.set_fault_plan(
        FaultPlan::new(5)
            .drop_wire(EdgeId(0), Wire::Data, 0, 2)
            .panic_at(InstanceId(0), 3),
    );
    sim.set_failure_policy(FailurePolicy::Quarantine);
    sim.run(5).unwrap();
    let c = counts.get();
    assert_eq!(c.faults, 3, "2 drops + 1 panic");
    assert_eq!(c.quarantines, 1);
}

#[test]
fn canonical_jsonl_is_identical_across_schedulers() {
    use std::io::Write;
    #[derive(Clone, Default)]
    struct Buf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl Write for Buf {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let stream = |sched: SchedKind, seed: u64| {
        let (mut sim, _got) = src_sink_with(sched);
        let buf = Buf::default();
        sim.set_probe(Box::new(JsonlProbe::new(buf.clone()).canonical()));
        let topo = sim.topology().clone();
        sim.set_fault_plan(FaultPlan::random(seed, &topo, 16, 0.4));
        sim.set_failure_policy(FailurePolicy::Quarantine);
        sim.run(16).unwrap();
        drop(sim);
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    };

    for seed in [1u64, 42, 1234] {
        let sweep = stream(SchedKind::Sweep, seed);
        let dynamic = stream(SchedKind::Dynamic, seed);
        let fixed = stream(SchedKind::Static, seed);
        assert_eq!(sweep, dynamic, "seed {seed}: sweep vs dynamic");
        assert_eq!(sweep, fixed, "seed {seed}: sweep vs static");
        assert!(!sweep.is_empty());
    }
}

// ------------------------------------------------- checkpoint and rollback

/// A stateful sink that tears its own state: each delivery increments
/// `count` twice, but at the chosen step it panics between the two
/// increments, leaving `count` odd — exactly the half-mutated state the
/// quarantine scrub must erase.
struct TornCounter {
    count: u64,
    panic_at: u64,
}
impl Module for TornCounter {
    fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
        ctx.set_ack(PortId(0), 0, true)
    }
    fn commit(&mut self, ctx: &mut CommitCtx<'_>) -> Result<(), SimError> {
        if ctx.transferred_in(PortId(0), 0).is_some() {
            self.count += 1;
            if ctx.now() == self.panic_at {
                panic!("torn mid-commit at {}", ctx.now());
            }
            self.count += 1;
        }
        Ok(())
    }
    fn state_save(&self) -> Result<Vec<u8>, SimError> {
        let mut w = StateWriter::new();
        w.put_u64(self.count);
        Ok(w.into_bytes())
    }
    fn state_restore(&mut self, state: &[u8]) -> Result<(), SimError> {
        if state.is_empty() {
            self.count = 0;
            return Ok(());
        }
        let mut r = StateReader::new(state);
        self.count = r.get_u64()?;
        r.expect_end()
    }
}

fn src_torn(sched: SchedKind, panic_at: u64) -> Simulator {
    let mut b = NetlistBuilder::new();
    let s = b
        .add(
            "s",
            ModuleSpec::new("src").output("out", 1, 1),
            Box::new(Src),
        )
        .unwrap();
    let k = b
        .add(
            "torn",
            ModuleSpec::new("torn").input("in", 1, 1),
            Box::new(TornCounter { count: 0, panic_at }),
        )
        .unwrap();
    b.connect(s, "out", k, "in").unwrap();
    let _ = k;
    Simulator::new(b.build().unwrap(), sched)
}

#[test]
fn quarantine_scrubs_torn_module_state() {
    let mut sim = src_torn(SchedKind::Dynamic, 2);
    sim.set_failure_policy(FailurePolicy::Quarantine);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = sim.run(5);
    std::panic::set_hook(prev);
    r.unwrap();
    assert!(sim.is_quarantined(InstanceId(1)));
    // Without the scrub the counter would be stuck at the torn value 5
    // (two deliveries complete, the third half-done); the scrub resets it
    // to the initial state, so the snapshot sees a clean module.
    let snap = sim.snapshot().unwrap();
    let blob = snap.module_state(1).unwrap();
    let mut r = StateReader::new(blob);
    assert_eq!(r.get_u64().unwrap(), 0, "torn state was scrubbed");
}

#[test]
fn snapshots_after_quarantine_are_scheduler_independent() {
    // Torn state is scheduler-dependent in general (how far the mutation
    // got depends on invocation order); the scrub makes the post-
    // quarantine durable state identical everywhere. Engine counters like
    // `reacts` legitimately differ per scheduler, so compare the
    // scheduler-independent parts: module blobs, transfers, quarantine.
    let mut states = Vec::new();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for sched in [SchedKind::Sweep, SchedKind::Dynamic, SchedKind::Static] {
        let mut sim = src_torn(sched, 2);
        sim.set_failure_policy(FailurePolicy::Quarantine);
        sim.run(6).unwrap();
        let snap = sim.snapshot().unwrap();
        let blobs: Vec<Vec<u8>> = (0..snap.instance_count())
            .map(|i| snap.module_state(i).unwrap().to_vec())
            .collect();
        states.push((
            blobs,
            sim.transfer_counts().to_vec(),
            sim.quarantined_instances(),
        ));
    }
    std::panic::set_hook(prev);
    for s in &states[1..] {
        assert_eq!(*s, states[0]);
    }
}

#[test]
fn rollback_recovers_an_injected_panic_and_completes() {
    // A plan-injected panic quarantines the source; with rollback armed
    // the run rewinds to the last checkpoint, masks the fault-plan entry
    // and finishes with nothing quarantined.
    let (mut sim, got) = src_sink();
    let (probe, counts) = CountingProbe::new();
    sim.set_probe(Box::new(probe));
    sim.set_fault_plan(FaultPlan::new(7).panic_at(InstanceId(0), 3));
    sim.set_failure_policy(FailurePolicy::Quarantine);
    sim.set_auto_checkpoint(2);
    sim.set_rollback(true);
    sim.run(8).unwrap();
    assert!(
        sim.quarantined_instances().is_empty(),
        "rollback lifted the quarantine"
    );
    assert_eq!(sim.rollbacks(), 1);
    assert_eq!(
        sim.metrics().steps,
        8,
        "restored metrics count each step once"
    );
    // Steps 0-2 delivered 0,1,2; the panic step delivered nothing; the
    // rewind to the step-2 checkpoint replays 2..8. The sink's external
    // buffer sees the replay (external channels are not rolled back).
    assert_eq!(*got.lock().unwrap(), vec![0, 1, 2, 2, 3, 4, 5, 6, 7]);
    let c = counts.get();
    assert!(c.checkpoints >= 1, "periodic checkpoints fired");
    assert_eq!(c.rollbacks, 1, "one rollback event");
    assert_eq!(c.restores, 1, "one restore event");
    assert_eq!(
        c.quarantines, 1,
        "the failing step's quarantine was observed"
    );
}

#[test]
fn organic_panic_is_retried_once_then_quarantine_stands() {
    // A real (non-plan) panic replays identically after the rewind: the
    // retry-once bookkeeping lets the second quarantine stand instead of
    // looping forever.
    let got = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut b = NetlistBuilder::new();
    let s = b
        .add(
            "bomb",
            ModuleSpec::new("src").output("out", 1, 1),
            Box::new(PanicsAt(3)),
        )
        .unwrap();
    let k = b
        .add(
            "k",
            ModuleSpec::new("sink").input("in", 1, 1),
            Box::new(Sink { got: got.clone() }),
        )
        .unwrap();
    b.connect(s, "out", k, "in").unwrap();
    let mut sim = Simulator::new(b.build().unwrap(), SchedKind::Dynamic);
    sim.set_failure_policy(FailurePolicy::Quarantine);
    sim.set_auto_checkpoint(2);
    sim.set_rollback(true);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = sim.run(8);
    std::panic::set_hook(prev);
    r.unwrap();
    assert_eq!(sim.rollbacks(), 1, "exactly one retry");
    assert!(sim.is_quarantined(InstanceId(0)), "second failure stands");
    assert_eq!(sim.metrics().steps, 8);
}

#[test]
fn organic_divergence_is_not_rolled_back() {
    // Divergence rollback only fires when masking the oscillating edges
    // removes fault-plan entries; an organic combinational loop must
    // still surface as an error even with rollback armed.
    let mut b = NetlistBuilder::new();
    let inv = b
        .add(
            "inv",
            ModuleSpec::new("inverter")
                .output("out", 1, 1)
                .input("in", 1, 1),
            Box::new(SelfInverter),
        )
        .unwrap();
    b.connect(inv, "out", inv, "in").unwrap();
    let mut sim = Simulator::new(b.build().unwrap(), SchedKind::Dynamic);
    sim.set_watchdog(32);
    sim.set_auto_checkpoint(4);
    sim.set_rollback(true);
    let err = sim.run(4).unwrap_err();
    assert!(err.as_divergence().is_some(), "{err}");
    assert_eq!(sim.rollbacks(), 0);
}

#[test]
fn divergence_with_plan_entry_is_retried_once() {
    // The oscillating edge carries a fault-plan entry, so the first
    // divergence rolls back and masks it; the loop is organic, so the
    // retry diverges again and the error propagates — bounded recovery.
    let mut b = NetlistBuilder::new();
    let inv = b
        .add(
            "inv",
            ModuleSpec::new("inverter")
                .output("out", 1, 1)
                .input("in", 1, 1),
            Box::new(SelfInverter),
        )
        .unwrap();
    b.connect(inv, "out", inv, "in").unwrap();
    let mut sim = Simulator::new(b.build().unwrap(), SchedKind::Dynamic);
    let (probe, counts) = CountingProbe::new();
    sim.set_probe(Box::new(probe));
    sim.set_fault_plan(FaultPlan::new(9).drop_wire(EdgeId(0), Wire::Enable, 0, 2));
    sim.set_watchdog(32);
    sim.set_auto_checkpoint(4);
    sim.set_rollback(true);
    let err = sim.run(4).unwrap_err();
    assert!(err.as_divergence().is_some(), "{err}");
    assert_eq!(sim.rollbacks(), 1, "one masked retry, then give up");
    let c = counts.get();
    assert_eq!(c.rollbacks, 1);
    assert_eq!(c.restores, 1);
}

#[test]
fn checkpoint_restore_resumes_bit_exactly() {
    // run(N+M) and run(N); snapshot; restore-into-fresh; run(M) agree on
    // transfers, stats and final durable state.
    let (mut control, got_c) = src_sink();
    control.run(10).unwrap();
    let control_snap = control.snapshot().unwrap();

    let (mut first, _got_f) = src_sink();
    first.run(6).unwrap();
    let mid = first.snapshot().unwrap();
    let bytes = mid.to_bytes();
    let mid = Snapshot::from_bytes(&bytes).unwrap();

    let (mut resumed, got_r) = src_sink();
    resumed.restore(&mid).unwrap();
    assert_eq!(resumed.now(), 6);
    resumed.run(4).unwrap();
    assert_eq!(
        resumed.snapshot().unwrap().state_hash(),
        control_snap.state_hash(),
        "durable state identical to the uninterrupted run"
    );
    assert_eq!(*got_r.lock().unwrap(), (6..10).collect::<Vec<u64>>());
    assert_eq!(*got_c.lock().unwrap(), (0..10).collect::<Vec<u64>>());
}

#[test]
fn restore_rejects_census_mismatch() {
    let (sim, _got) = src_sink();
    let snap = sim.snapshot().unwrap();
    // A one-instance netlist cannot take a two-instance snapshot.
    let mut b = NetlistBuilder::new();
    b.add(
        "s",
        ModuleSpec::new("src").output("out", 0, 1),
        Box::new(Src),
    )
    .unwrap();
    let mut other = Simulator::new(b.build().unwrap(), SchedKind::Dynamic);
    let err = other.restore(&snap).unwrap_err();
    assert!(
        matches!(err.as_checkpoint(), Some(CheckpointError::Malformed(_))),
        "{err}"
    );
}

#[test]
fn random_plans_respect_the_horizon() {
    let (sim, _got) = src_sink();
    let topo = sim.topology().clone();
    let plan = FaultPlan::random(99, &topo, 10, 1.0);
    assert!(!plan.is_empty(), "intensity 1.0 on a real topology");
    for f in plan.signal_faults() {
        assert!(
            f.until <= 10,
            "window {:?} exceeds horizon",
            (f.from, f.until)
        );
    }
}
