//! Property tests of the probe event stream.
//!
//! The paper's central claim — the reaction fixed point is unique and
//! scheduler-independent — extends to observability: the *full* event
//! stream a probe sees (which wire resolved with which polarity and
//! payload, who resolved it, which handshakes completed) is a property of
//! the netlist, not of the evaluation order. These tests run random
//! layered netlists under all three schedulers and require the recorded
//! streams to be identical, and check the structural invariant that every
//! wire of every connection resolves exactly once per time-step.

use liberty_core::prelude::*;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

const P0: PortId = PortId(0);
const P1: PortId = PortId(1);

/// Pseudo-random word source (deterministic from seed).
struct RndSource {
    state: u64,
}
impl RndSource {
    fn next_word(&self) -> u64 {
        let mut x = self.state.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }
}
impl Module for RndSource {
    fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
        let w = self.next_word();
        for i in 0..ctx.width(P0) {
            // Leave some connections unsent so the default semantics
            // participate and ResolvedBy::Default shows up in the stream.
            if (w >> i) & 3 == 0 {
                continue;
            }
            ctx.send(P0, i, Value::Word(w.wrapping_add(i as u64)))?;
        }
        Ok(())
    }
    fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
        self.state = self.next_word();
        Ok(())
    }
}

/// Combinational adder over fully resolved inputs.
struct Adder;
impl Module for Adder {
    fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
        let mut sum = 0u64;
        for i in 0..ctx.width(P0) {
            match ctx.data(P0, i) {
                Res::Unknown => return Ok(()),
                Res::No => {}
                Res::Yes(v) => sum = sum.wrapping_add(v.as_word().unwrap_or(0)),
            }
        }
        for i in 0..ctx.width(P0) {
            ctx.set_ack(P0, i, true)?;
        }
        for i in 0..ctx.width(P1) {
            ctx.send(P1, i, Value::Word(sum))?;
        }
        Ok(())
    }
    fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
        Ok(())
    }
}

/// Collector acking everything.
struct Collect;
impl Module for Collect {
    fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
        for i in 0..ctx.width(P0) {
            ctx.set_ack(P0, i, true)?;
        }
        Ok(())
    }
    fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
        Ok(())
    }
}

/// One recorded `signal_resolved` event, in comparable form.
type ResolveEv = (u64, u32, u8, bool, Option<String>, Option<u32>);
/// One recorded `transfer` event.
type TransferEv = (u64, u32, String, String, String);

#[derive(Default)]
struct Recorded {
    resolves: Vec<ResolveEv>,
    transfers: Vec<TransferEv>,
}

/// Probe recording the full event stream into a shared buffer.
#[derive(Clone)]
struct Recorder(Arc<Mutex<Recorded>>);

impl Probe for Recorder {
    fn signal_resolved(
        &mut self,
        now: u64,
        edge: EdgeId,
        wire: Wire,
        yes: bool,
        value: Option<&Value>,
        by: ResolvedBy,
    ) {
        let wi = match wire {
            Wire::Data => 0,
            Wire::Enable => 1,
            Wire::Ack => 2,
        };
        let by = match by {
            ResolvedBy::Module(i) => Some(i.0),
            ResolvedBy::Default => None,
        };
        self.0.lock().unwrap().resolves.push((
            now,
            edge.0,
            wi,
            yes,
            value.map(|v| v.to_string()),
            by,
        ));
    }
    fn transfer(&mut self, now: u64, edge: EdgeId, src: &str, dst: &str, value: &Value) {
        self.0.lock().unwrap().transfers.push((
            now,
            edge.0,
            src.to_string(),
            dst.to_string(),
            value.to_string(),
        ));
    }
}

#[derive(Clone, Debug)]
struct NetDesc {
    seed: u64,
    layers: Vec<Vec<u8>>, // 0 = adder, anything else = collect-like adder
    wiring: Vec<u64>,
}

fn build(desc: &NetDesc, sched: SchedKind) -> Simulator {
    let mut b = NetlistBuilder::new();
    let src = b
        .add(
            "src",
            ModuleSpec::new("rnd_source").output("out", 0, u32::MAX),
            Box::new(RndSource {
                state: desc.seed | 1,
            }),
        )
        .unwrap();
    let mut prev: Vec<InstanceId> = vec![src];
    for (li, layer) in desc.layers.iter().enumerate() {
        let mut cur = Vec::new();
        for (ni, _) in layer.iter().enumerate() {
            let name = format!("n{li}_{ni}");
            let spec = ModuleSpec::new("adder")
                .input("in", 0, u32::MAX)
                .output("out", 0, u32::MAX);
            cur.push(b.add(name, spec, Box::new(Adder)).unwrap());
        }
        let w = desc.wiring.get(li).copied().unwrap_or(7);
        for (pi, &p) in prev.iter().enumerate() {
            let t1 = cur[(pi as u64 ^ w) as usize % cur.len()];
            b.connect(p, "out", t1, "in").unwrap();
            if (w >> pi) & 1 == 1 {
                let t2 = cur[(pi as u64 + w) as usize % cur.len()];
                b.connect(p, "out", t2, "in").unwrap();
            }
        }
        prev = cur;
    }
    let k = b
        .add(
            "k",
            ModuleSpec::new("collect").input("in", 0, u32::MAX),
            Box::new(Collect),
        )
        .unwrap();
    for &p in &prev {
        b.connect(p, "out", k, "in").unwrap();
    }
    Simulator::new(b.build().unwrap(), sched)
}

fn desc_strategy() -> impl Strategy<Value = NetDesc> {
    (
        any::<u64>(),
        prop::collection::vec(prop::collection::vec(0u8..2, 1..4), 1..4),
        prop::collection::vec(any::<u64>(), 4),
    )
        .prop_map(|(seed, layers, wiring)| NetDesc {
            seed,
            layers,
            wiring,
        })
}

/// Run `steps` under a scheduler, return the sorted event streams.
fn record(desc: &NetDesc, sched: SchedKind, steps: u64) -> Recorded {
    let mut sim = build(desc, sched);
    let rec = Recorder(Arc::new(Mutex::new(Recorded::default())));
    sim.set_probe(Box::new(rec.clone()));
    sim.run(steps).unwrap();
    drop(sim); // release the probe's clone of the Arc
    let mut r = Arc::try_unwrap(rec.0)
        .unwrap_or_else(|a| panic!("probe still shared: {} refs", Arc::strong_count(&a)))
        .into_inner()
        .unwrap();
    // Within a step the emission order is schedule-dependent; the multiset
    // of events is not. Sort for comparison.
    r.resolves.sort();
    r.transfers.sort();
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The probe event stream — every resolution with polarity, payload
    /// and attribution, and every completed handshake — is identical
    /// across Sweep, Dynamic and Static scheduling.
    #[test]
    fn probe_stream_is_scheduler_independent(desc in desc_strategy()) {
        let w = record(&desc, SchedKind::Sweep, 12);
        let d = record(&desc, SchedKind::Dynamic, 12);
        let s = record(&desc, SchedKind::Static, 12);
        prop_assert_eq!(&w.resolves, &d.resolves);
        prop_assert_eq!(&d.resolves, &s.resolves);
        prop_assert_eq!(&w.transfers, &d.transfers);
        prop_assert_eq!(&d.transfers, &s.transfers);
    }

    /// Structural invariant: every wire of every connection resolves
    /// exactly once per time-step — resolutions = 3 × edges × steps,
    /// regardless of how many resolutions fall to the default semantics.
    #[test]
    fn every_wire_resolves_once_per_step(desc in desc_strategy()) {
        for sched in [SchedKind::Sweep, SchedKind::Dynamic, SchedKind::Static] {
            let mut sim = build(&desc, sched);
            let (probe, counts) = CountingProbe::new();
            sim.set_probe(Box::new(probe));
            let steps = 9u64;
            sim.run(steps).unwrap();
            let edges = sim.topology().edge_count() as u64;
            let c = counts.get();
            prop_assert_eq!(c.steps, steps);
            prop_assert_eq!(c.resolutions, 3 * edges * steps);
            prop_assert!(c.defaults <= c.resolutions);
            // Transfers are a subset of steps × edges and agree with the
            // kernel's own per-edge accounting.
            let kernel_total: u64 = sim.transfer_counts().iter().sum();
            prop_assert_eq!(c.transfers, kernel_total);
        }
    }
}
