//! Versioned checkpoints of the full simulator state.
//!
//! LSE's fixed reactive MoC makes a time-step a pure function of
//! (topology, signal state, module state) — and every wire of every
//! connection re-resolves from `Unknown` at the start of each step, so
//! at a **step boundary** the signal store carries no live information
//! at all. A checkpoint therefore needs only the durable state: the step
//! counter, the engine counters, the cumulative per-edge transfer
//! counts, the statistics store, the quarantine set and one opaque blob
//! per module instance (produced by [`crate::module::Module::state_save`]).
//! Restoring into an identically built simulator resumes the run with
//! byte-identical canonical probe streams under every scheduler — the
//! round-trip property `crates/bench/tests/roundtrip.rs` holds the
//! kernel to.
//!
//! The on-disk format is deliberately dependency-free: little-endian,
//! length-prefixed fields inside a checksummed envelope
//!
//! ```text
//! magic "LSEC" | version u32 | payload_len u64 | payload | crc32 u32
//! ```
//!
//! with the CRC32 (IEEE, table-driven) computed over the payload bytes.
//! Corruption is diagnosed structurally — bad magic, version mismatch,
//! checksum failure, truncation — via [`CheckpointError`], and files are
//! written atomically (temp file + rename) so a crash mid-write can
//! never leave a half checkpoint under the real name.
//!
//! The fault plan itself is *not* part of a snapshot: plan activation is
//! a pure function of the step number, so reinstalling the same plan
//! (same seed) on the restored simulator reproduces the same injections.
//! Hosts that rely on recovery's fault masking re-arm plans through
//! [`crate::exec::Simulator::set_fault_plan`] as usual.

use crate::error::{CheckpointError, SimError};
use crate::exec::EngineMetrics;
use crate::stats::{Histogram, Sample, Stats, StatsDump};
use crate::value::Value;
use std::path::Path;
use std::sync::Arc;

/// First four bytes of every checkpoint file.
pub const MAGIC: [u8; 4] = *b"LSEC";

/// The checkpoint format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Envelope bytes before the payload: magic + version + payload length.
const HEADER_LEN: usize = 4 + 4 + 8;

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC32 of `data` (the polynomial every `cksum`-family tool
/// speaks, so a checkpoint's integrity can be re-checked from a shell).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn malformed(msg: impl Into<String>) -> SimError {
    SimError::checkpoint(CheckpointError::Malformed(msg.into()))
}

/// Little-endian, length-prefixed binary writer — the codec module
/// implementations of [`crate::module::Module::state_save`] use for
/// their state blobs, and the snapshot envelope uses for everything
/// else. Writing is infallible; only [`StateWriter::put_value`] can fail
/// (opaque payloads have no generic encoding).
#[derive(Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (NaN-exact).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `usize` as a `u64`.
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append a byte slice, length-prefixed.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_len(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Append a string, length-prefixed UTF-8.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Append a [`Value`]. All shapes the kernel defines round-trip
    /// (`Unit`/`Bool`/`Word`/`Int`/`Float`/`Str`/`Tuple`, tuples
    /// recursively); [`Value::Opaque`] payloads are library-defined and
    /// have no generic encoding — a module holding opaque state must
    /// encode it itself in its `state_save` (the way `pcl`'s `memarray`
    /// flattens its in-flight responses to words) or return this error.
    pub fn put_value(&mut self, v: &Value) -> Result<(), SimError> {
        match v {
            Value::Unit => self.put_u8(0),
            Value::Bool(b) => {
                self.put_u8(1);
                self.put_bool(*b);
            }
            Value::Word(w) => {
                self.put_u8(2);
                self.put_u64(*w);
            }
            Value::Int(i) => {
                self.put_u8(3);
                self.put_i64(*i);
            }
            Value::Float(x) => {
                self.put_u8(4);
                self.put_f64(*x);
            }
            Value::Str(s) => {
                self.put_u8(5);
                self.put_str(s);
            }
            Value::Tuple(t) => {
                self.put_u8(6);
                self.put_len(t.len());
                for e in t.iter() {
                    self.put_value(e)?;
                }
            }
            Value::Opaque(o) => {
                return Err(SimError::model(format!(
                    "cannot checkpoint opaque value of type {} — the owning module \
                     must encode it explicitly in state_save",
                    o.type_name()
                )));
            }
        }
        Ok(())
    }
}

/// Cursor over bytes written by a [`StateWriter`]. Every read is
/// bounds-checked and returns a structured [`CheckpointError`] on
/// corruption instead of panicking.
pub struct StateReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Read from the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        StateReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Error unless every byte has been consumed — catches blobs with
    /// trailing garbage that a plain prefix decode would silently accept.
    pub fn expect_end(&self) -> Result<(), SimError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(malformed(format!(
                "{} trailing bytes after the last field",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SimError> {
        if self.remaining() < n {
            return Err(SimError::checkpoint(CheckpointError::Truncated {
                needed: (self.pos + n) as u64,
                available: self.data.len() as u64,
            }));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, SimError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool; any byte other than 0/1 is corruption.
    pub fn get_bool(&mut self) -> Result<bool, SimError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(malformed(format!("bool byte {b:#x}"))),
        }
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SimError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SimError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, SimError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SimError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length prefix, bounds-checked against the bytes actually
    /// left so a corrupted length cannot drive a huge allocation.
    pub fn get_len(&mut self) -> Result<usize, SimError> {
        let n = self.get_u64()?;
        if n > self.remaining() as u64 {
            return Err(SimError::checkpoint(CheckpointError::Truncated {
                needed: (self.pos as u64).saturating_add(n),
                available: self.data.len() as u64,
            }));
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SimError> {
        let n = self.get_len()?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, SimError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|e| malformed(format!("string field: {e}")))
    }

    /// Read a [`Value`] written by [`StateWriter::put_value`].
    pub fn get_value(&mut self) -> Result<Value, SimError> {
        Ok(match self.get_u8()? {
            0 => Value::Unit,
            1 => Value::Bool(self.get_bool()?),
            2 => Value::Word(self.get_u64()?),
            3 => Value::Int(self.get_i64()?),
            4 => Value::Float(self.get_f64()?),
            5 => Value::Str(Arc::from(self.get_str()?)),
            6 => {
                let n = self.get_len()?;
                let mut items = Vec::with_capacity(n.min(self.remaining()));
                for _ in 0..n {
                    items.push(self.get_value()?);
                }
                Value::Tuple(Arc::new(items))
            }
            t => return Err(malformed(format!("value tag {t:#x}"))),
        })
    }
}

/// A checkpoint of the full durable simulator state, taken at a step
/// boundary by [`crate::exec::Simulator::snapshot`] and applied by
/// [`crate::exec::Simulator::restore`]. Serialize with
/// [`Snapshot::to_bytes`] / [`Snapshot::write_file`]; the in-memory form
/// is what the kernel's rollback path keeps.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Next step the restored run will execute.
    pub(crate) now: u64,
    /// Instance census of the topology the snapshot was taken from.
    pub(crate) n_instances: u32,
    /// Edge census of the topology the snapshot was taken from.
    pub(crate) n_edges: u32,
    /// Engine counters at the boundary.
    pub(crate) metrics: EngineMetrics,
    /// Cumulative completed-transfer count per edge.
    pub(crate) transfer_counts: Vec<u64>,
    /// Ids of quarantined instances, ascending.
    pub(crate) quarantined: Vec<u32>,
    /// Statistics store, in deterministic dump order.
    pub(crate) stats: StatsDump,
    /// One `state_save` blob per instance, in id order.
    pub(crate) modules: Vec<Vec<u8>>,
}

impl Snapshot {
    /// The step the restored simulator will execute next.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Instance count of the topology this snapshot fits.
    pub fn instance_count(&self) -> usize {
        self.n_instances as usize
    }

    /// Edge count of the topology this snapshot fits.
    pub fn edge_count(&self) -> usize {
        self.n_edges as usize
    }

    /// Engine counters at the checkpoint boundary.
    pub fn metrics(&self) -> EngineMetrics {
        self.metrics
    }

    /// The `state_save` blob of instance `i` (empty for stateless
    /// modules). Exposed so tests can assert on saved state directly.
    pub fn module_state(&self, i: usize) -> Option<&[u8]> {
        self.modules.get(i).map(|b| b.as_slice())
    }

    /// CRC32 over the encoded payload — a stable fingerprint of the
    /// complete durable state. Two simulators in identical states hash
    /// identically (the golden-state CI job compares exactly this).
    pub fn state_hash(&self) -> u32 {
        crc32(&self.encode_payload())
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_u64(self.now);
        w.put_u32(self.n_instances);
        w.put_u32(self.n_edges);
        let m = &self.metrics;
        for v in [
            m.steps,
            m.reacts,
            m.commits,
            m.defaults,
            m.faults_injected,
            m.quarantines,
        ] {
            w.put_u64(v);
        }
        w.put_len(self.transfer_counts.len());
        for &c in &self.transfer_counts {
            w.put_u64(c);
        }
        w.put_len(self.quarantined.len());
        for &q in &self.quarantined {
            w.put_u32(q);
        }
        encode_stats(&mut w, &self.stats);
        w.put_len(self.modules.len());
        for blob in &self.modules {
            w.put_bytes(blob);
        }
        w.into_bytes()
    }

    fn decode_payload(payload: &[u8]) -> Result<Snapshot, SimError> {
        let mut r = StateReader::new(payload);
        let now = r.get_u64()?;
        let n_instances = r.get_u32()?;
        let n_edges = r.get_u32()?;
        let mut vals = [0u64; 6];
        for v in &mut vals {
            *v = r.get_u64()?;
        }
        let metrics = EngineMetrics {
            steps: vals[0],
            reacts: vals[1],
            commits: vals[2],
            defaults: vals[3],
            faults_injected: vals[4],
            quarantines: vals[5],
        };
        let n_tc = r.get_len()?;
        let mut transfer_counts = Vec::with_capacity(n_tc);
        for _ in 0..n_tc {
            transfer_counts.push(r.get_u64()?);
        }
        if transfer_counts.len() != n_edges as usize {
            return Err(malformed(format!(
                "{} transfer counts for {} edges",
                transfer_counts.len(),
                n_edges
            )));
        }
        let n_q = r.get_len()?;
        let mut quarantined = Vec::with_capacity(n_q);
        for _ in 0..n_q {
            let q = r.get_u32()?;
            if q >= n_instances {
                return Err(malformed(format!(
                    "quarantined instance {q} out of range (census {n_instances})"
                )));
            }
            if quarantined.last().is_some_and(|&p| p >= q) {
                return Err(malformed("quarantine set not strictly ascending"));
            }
            quarantined.push(q);
        }
        let stats = decode_stats(&mut r)?;
        let n_mods = r.get_len()?;
        if n_mods != n_instances as usize {
            return Err(malformed(format!(
                "{n_mods} module blobs for {n_instances} instances"
            )));
        }
        let mut modules = Vec::with_capacity(n_mods);
        for _ in 0..n_mods {
            modules.push(r.get_bytes()?.to_vec());
        }
        r.expect_end()?;
        Ok(Snapshot {
            now,
            n_instances,
            n_edges,
            metrics,
            transfer_counts,
            quarantined,
            stats,
            modules,
        })
    }

    /// Serialize to the versioned, checksummed envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let crc = crc32(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse and validate an envelope. Corruption comes back as a
    /// structured [`SimError::Checkpoint`]: bad magic, version mismatch,
    /// truncation, checksum failure or a malformed payload field — in
    /// that diagnostic order, so the most fundamental problem is named.
    pub fn from_bytes(data: &[u8]) -> Result<Snapshot, SimError> {
        if data.len() >= 4 && data[..4] != MAGIC {
            return Err(SimError::checkpoint(CheckpointError::BadMagic {
                found: data[..4].to_vec(),
            }));
        }
        if data.len() < HEADER_LEN {
            if data.len() < 4 && !MAGIC.starts_with(&data[..data.len().min(4)]) {
                return Err(SimError::checkpoint(CheckpointError::BadMagic {
                    found: data.to_vec(),
                }));
            }
            return Err(SimError::checkpoint(CheckpointError::Truncated {
                needed: HEADER_LEN as u64,
                available: data.len() as u64,
            }));
        }
        let version = u32::from_le_bytes(data[4..8].try_into().expect("4"));
        if version != FORMAT_VERSION {
            return Err(SimError::checkpoint(CheckpointError::VersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            }));
        }
        let payload_len = u64::from_le_bytes(data[8..16].try_into().expect("8"));
        let needed = (HEADER_LEN as u64)
            .saturating_add(payload_len)
            .saturating_add(4);
        if (data.len() as u64) < needed {
            return Err(SimError::checkpoint(CheckpointError::Truncated {
                needed,
                available: data.len() as u64,
            }));
        }
        if data.len() as u64 > needed {
            return Err(malformed(format!(
                "{} bytes after the checksum trailer",
                data.len() as u64 - needed
            )));
        }
        let payload = &data[HEADER_LEN..HEADER_LEN + payload_len as usize];
        let stored = u32::from_le_bytes(
            data[HEADER_LEN + payload_len as usize..]
                .try_into()
                .expect("4"),
        );
        let computed = crc32(payload);
        if stored != computed {
            return Err(SimError::checkpoint(CheckpointError::ChecksumMismatch {
                stored,
                computed,
            }));
        }
        Self::decode_payload(payload)
    }

    /// Write the checkpoint to `path` atomically: the bytes land in a
    /// sibling `.tmp` file first and are renamed over `path` only once
    /// fully written, so a crash mid-write never leaves a torn file
    /// under the real name.
    pub fn write_file(&self, path: &Path) -> Result<(), SimError> {
        let io = |e: std::io::Error| {
            SimError::checkpoint(CheckpointError::Io {
                path: path.to_path_buf(),
                msg: e.to_string(),
            })
        };
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_bytes()).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Read and validate a checkpoint file.
    pub fn read_file(path: &Path) -> Result<Snapshot, SimError> {
        let data = std::fs::read(path).map_err(|e| {
            SimError::checkpoint(CheckpointError::Io {
                path: path.to_path_buf(),
                msg: e.to_string(),
            })
        })?;
        Self::from_bytes(&data)
    }
}

fn encode_stats(w: &mut StateWriter, d: &StatsDump) {
    w.put_len(d.counters.len());
    for (name, per_inst) in &d.counters {
        w.put_str(name);
        w.put_len(per_inst.len());
        for &(i, v) in per_inst {
            w.put_u32(i);
            w.put_u64(v);
        }
    }
    w.put_len(d.samples.len());
    for (name, per_inst) in &d.samples {
        w.put_str(name);
        w.put_len(per_inst.len());
        for (i, s) in per_inst {
            w.put_u32(*i);
            w.put_f64(s.sum);
            w.put_u64(s.n);
            w.put_f64(s.min);
            w.put_f64(s.max);
        }
    }
    w.put_len(d.histograms.len());
    for (name, per_inst) in &d.histograms {
        w.put_str(name);
        w.put_len(per_inst.len());
        for (i, h) in per_inst {
            w.put_u32(*i);
            let (buckets, count, sum) = h.raw_parts();
            w.put_len(buckets.len());
            for &b in buckets {
                w.put_u64(b);
            }
            w.put_u64(count);
            w.put_u64(sum);
        }
    }
}

fn decode_stats(r: &mut StateReader<'_>) -> Result<StatsDump, SimError> {
    let mut d = StatsDump::default();
    let n_c = r.get_len()?;
    for _ in 0..n_c {
        let name = r.get_str()?.to_owned();
        let n = r.get_len()?;
        let mut per_inst = Vec::with_capacity(n);
        for _ in 0..n {
            per_inst.push((r.get_u32()?, r.get_u64()?));
        }
        d.counters.push((name, per_inst));
    }
    let n_s = r.get_len()?;
    for _ in 0..n_s {
        let name = r.get_str()?.to_owned();
        let n = r.get_len()?;
        let mut per_inst = Vec::with_capacity(n);
        for _ in 0..n {
            let i = r.get_u32()?;
            let sum = r.get_f64()?;
            let n_samples = r.get_u64()?;
            let min = r.get_f64()?;
            let max = r.get_f64()?;
            per_inst.push((
                i,
                Sample {
                    sum,
                    n: n_samples,
                    min,
                    max,
                },
            ));
        }
        d.samples.push((name, per_inst));
    }
    let n_h = r.get_len()?;
    for _ in 0..n_h {
        let name = r.get_str()?.to_owned();
        let n = r.get_len()?;
        let mut per_inst = Vec::with_capacity(n);
        for _ in 0..n {
            let i = r.get_u32()?;
            let n_buckets = r.get_len()?;
            let mut buckets = Vec::with_capacity(n_buckets);
            for _ in 0..n_buckets {
                buckets.push(r.get_u64()?);
            }
            let count = r.get_u64()?;
            let sum = r.get_u64()?;
            per_inst.push((i, Histogram::from_raw_parts(buckets, count, sum)));
        }
        d.histograms.push((name, per_inst));
    }
    Ok(d)
}

/// Rebuild a [`Stats`] store from a snapshot's dump (name interning and
/// all); the simulator's restore path calls this.
pub(crate) fn stats_from_snapshot(snap: &Snapshot) -> Stats {
    Stats::restore_from_dump(&snap.stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let mut stats = Stats::new();
        stats.count(crate::netlist::InstanceId(1), "retired", 42);
        stats.sample(crate::netlist::InstanceId(0), "lat", 2.5);
        stats.histo(crate::netlist::InstanceId(2), "occ", 7);
        Snapshot {
            now: 13,
            n_instances: 3,
            n_edges: 2,
            metrics: EngineMetrics {
                steps: 13,
                reacts: 40,
                commits: 39,
                defaults: 5,
                faults_injected: 1,
                quarantines: 1,
            },
            transfer_counts: vec![13, 12],
            quarantined: vec![2],
            stats: stats.dump(),
            modules: vec![vec![], vec![1, 2, 3], vec![0xFF]],
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The IEEE CRC32 check value: crc32("123456789") == 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn writer_reader_round_trip_scalars() {
        let mut w = StateWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(-5);
        w.put_f64(f64::NAN);
        w.put_bytes(b"abc");
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -5);
        assert!(r.get_f64().unwrap().is_nan(), "NaN bit pattern survives");
        assert_eq!(r.get_bytes().unwrap(), b"abc");
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn value_codec_round_trips_all_serializable_shapes() {
        let vals = vec![
            Value::Unit,
            Value::Bool(false),
            Value::Word(99),
            Value::Int(-1),
            Value::Float(1.5),
            Value::Str(Arc::from("s")),
            Value::Tuple(Arc::new(vec![
                Value::Word(1),
                Value::Tuple(Arc::new(vec![Value::Unit])),
            ])),
        ];
        let mut w = StateWriter::new();
        for v in &vals {
            w.put_value(v).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        for v in &vals {
            assert_eq!(&r.get_value().unwrap(), v);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn opaque_values_are_rejected_with_type_name() {
        #[derive(Debug, PartialEq)]
        struct Pkt(u32);
        let mut w = StateWriter::new();
        let err = w.put_value(&Value::wrap(Pkt(1))).unwrap_err();
        assert!(err.to_string().contains("Pkt"), "{err}");
    }

    #[test]
    fn reader_truncation_is_structured() {
        let mut w = StateWriter::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes[..3]);
        let err = r.get_u64().unwrap_err();
        assert!(matches!(
            err.as_checkpoint(),
            Some(CheckpointError::Truncated { .. })
        ));
        // A corrupted length prefix cannot drive a huge allocation.
        let mut w = StateWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let err = StateReader::new(&bytes).get_bytes().unwrap_err();
        assert!(matches!(
            err.as_checkpoint(),
            Some(CheckpointError::Truncated { .. })
        ));
    }

    #[test]
    fn snapshot_bytes_round_trip() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.state_hash(), snap.state_hash());
        assert_eq!(back.now(), 13);
        assert_eq!(back.module_state(1), Some(&[1u8, 2, 3][..]));
        // Re-encoding is byte-stable (golden hashing depends on this).
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn corruption_classes_are_diagnosed() {
        let good = sample_snapshot().to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(&bad_magic)
                .unwrap_err()
                .as_checkpoint(),
            Some(CheckpointError::BadMagic { .. })
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 0xEE;
        assert!(matches!(
            Snapshot::from_bytes(&bad_version)
                .unwrap_err()
                .as_checkpoint(),
            Some(CheckpointError::VersionMismatch { found, expected: 1 }) if *found != 1
        ));

        let mut bad_crc = good.clone();
        *bad_crc.last_mut().unwrap() ^= 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&bad_crc).unwrap_err().as_checkpoint(),
            Some(CheckpointError::ChecksumMismatch { .. })
        ));

        let truncated = &good[..good.len() - 9];
        assert!(matches!(
            Snapshot::from_bytes(truncated).unwrap_err().as_checkpoint(),
            Some(CheckpointError::Truncated { .. })
        ));

        // A payload byte flip lands on the checksum, not on a panic.
        let mut flipped = good.clone();
        flipped[HEADER_LEN + 2] ^= 0x40;
        assert!(matches!(
            Snapshot::from_bytes(&flipped).unwrap_err().as_checkpoint(),
            Some(CheckpointError::ChecksumMismatch { .. })
        ));

        let mut padded = good.clone();
        padded.push(0);
        assert!(matches!(
            Snapshot::from_bytes(&padded).unwrap_err().as_checkpoint(),
            Some(CheckpointError::Malformed(_))
        ));

        assert!(matches!(
            Snapshot::from_bytes(b"LS").unwrap_err().as_checkpoint(),
            Some(CheckpointError::Truncated { .. })
        ));
        assert!(matches!(
            Snapshot::from_bytes(b"no").unwrap_err().as_checkpoint(),
            Some(CheckpointError::BadMagic { .. })
        ));
    }

    #[test]
    fn file_round_trip_is_atomic() {
        let dir = std::env::temp_dir().join(format!(
            "lse-snap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.ckpt");
        let snap = sample_snapshot();
        snap.write_file(&path).unwrap();
        assert!(
            !path.with_file_name("a.ckpt.tmp").exists(),
            "temp file renamed away"
        );
        let back = Snapshot::read_file(&path).unwrap();
        assert_eq!(back, snap);
        let missing = Snapshot::read_file(&dir.join("absent.ckpt")).unwrap_err();
        assert!(matches!(
            missing.as_checkpoint(),
            Some(CheckpointError::Io { path, .. }) if path.ends_with("absent.ckpt")
        ));
        assert!(
            missing.to_string().contains("absent.ckpt"),
            "Display names the offending path: {missing}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
