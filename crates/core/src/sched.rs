//! Static-schedule analysis (paper ref [22], Penry & August DAC'03).
//!
//! Because LSE fixes a single reactive model of computation, the netlist
//! can be *analyzed*: we build the instance-level dependency graph (data
//! and enable wires order sender before receiver; ack wires order receiver
//! before sender only when the sender declared it reads acks in `react`),
//! condense strongly connected components with Tarjan's algorithm, and
//! assign each instance the topological rank of its component.
//!
//! The reaction phase then drains its worklist in rank order instead of
//! FIFO order. Both reach the same unique fixed point (module handlers are
//! monotone), but rank order resolves each instance's inputs before first
//! invoking it wherever the graph allows, cutting handler re-invocations —
//! the speedup measured in experiment E10.

use crate::netlist::InstanceId;
use crate::topology::Topology;
use std::collections::VecDeque;

/// The instance-level dependency graph the static analyses share.
///
/// `adj[u]` lists the instances that depend on `u` (must react after it);
/// self-edges are excluded from `adj` but recorded in `self_loop`, because
/// an instance connected to itself reacts to its own writes — a singleton
/// cycle the schedule compiler must treat as an island even though Tarjan
/// reports a singleton component.
pub(crate) struct DepGraph {
    pub(crate) adj: Vec<Vec<u32>>,
    pub(crate) self_loop: Vec<bool>,
}

/// Build the dependency graph: data and enable wires order sender before
/// receiver; ack wires order receiver before sender only when the sender
/// declared it reads acks in `react`.
pub(crate) fn dep_graph(topo: &Topology) -> DepGraph {
    let n = topo.instance_count();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut self_loop = vec![false; n];
    for e in topo.edge_metas() {
        let u = e.src.inst.0 as usize;
        let v = e.dst.inst.0;
        // Receiver depends on sender's data/enable.
        if u as u32 != v {
            adj[u].push(v);
        } else {
            self_loop[u] = true;
        }
        // Sender depends on receiver's ack only if it reads acks reactively.
        if topo.instance(InstanceId(u as u32)).spec.reads_ack_in_react {
            if v as usize != u {
                adj[v as usize].push(u as u32);
            } else {
                self_loop[u] = true;
            }
        }
    }
    for a in &mut adj {
        a.sort_unstable();
        a.dedup();
    }
    DepGraph { adj, self_loop }
}

/// Longest-path topological rank of each condensation component (Kahn).
pub(crate) fn condensation_ranks(adj: &[Vec<u32>], comp: &[u32], n_comp: usize) -> Vec<u32> {
    let mut cadj: Vec<Vec<u32>> = vec![Vec::new(); n_comp];
    let mut indeg = vec![0u32; n_comp];
    for (u, outs) in adj.iter().enumerate() {
        for &v in outs {
            let (cu, cv) = (comp[u], comp[v as usize]);
            if cu != cv {
                cadj[cu as usize].push(cv);
            }
        }
    }
    for a in &mut cadj {
        a.sort_unstable();
        a.dedup();
        for &v in a.iter() {
            indeg[v as usize] += 1;
        }
    }
    let mut rank = vec![0u32; n_comp];
    let mut q: VecDeque<u32> = indeg
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| i as u32)
        .collect();
    while let Some(c) = q.pop_front() {
        for &v in &cadj[c as usize] {
            rank[v as usize] = rank[v as usize].max(rank[c as usize] + 1);
            indeg[v as usize] -= 1;
            if indeg[v as usize] == 0 {
                q.push_back(v);
            }
        }
    }
    rank
}

/// Compute the scheduling rank of every instance: the topological rank of
/// its SCC in the dependency-graph condensation. Usually reached through
/// [`Topology::ranks`], which caches the result.
pub fn compute_ranks(topo: &Topology) -> Vec<u32> {
    let g = dep_graph(topo);
    let comp = tarjan_scc(&g.adj);
    let n_comp = comp.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    let rank = condensation_ranks(&g.adj, &comp, n_comp);
    comp.iter().map(|&c| rank[c as usize]).collect()
}

/// Iterative Tarjan SCC. Returns the component id of each node; component
/// ids are assigned in reverse topological order of discovery, but callers
/// only rely on ids being equal within one SCC.
pub(crate) fn tarjan_scc(adj: &[Vec<u32>]) -> Vec<u32> {
    let n = adj.len();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut comp = vec![UNSET; n];
    let mut next_index = 0u32;
    let mut next_comp = 0u32;

    // Explicit DFS stack: (node, next child position).
    let mut call: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if index[start as usize] != UNSET {
            continue;
        }
        call.push((start, 0));
        index[start as usize] = next_index;
        low[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci < adj[v as usize].len() {
                let w = adj[v as usize][*ci];
                *ci += 1;
                if index[w as usize] == UNSET {
                    index[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

/// A worklist that pops the queued instance with the smallest rank.
///
/// Pushing an instance of a lower rank than the current cursor moves the
/// cursor back, so correctness never depends on the ranks: they are purely
/// a performance hint.
pub struct RankQueue {
    ranks: Vec<u32>,
    buckets: Vec<VecDeque<u32>>,
    queued: Vec<bool>,
    cursor: usize,
    len: usize,
}

impl RankQueue {
    /// Create an empty queue over instances with the given ranks.
    pub fn new(ranks: &[u32]) -> Self {
        let max_rank = ranks.iter().copied().max().unwrap_or(0) as usize;
        RankQueue {
            ranks: ranks.to_vec(),
            buckets: vec![VecDeque::new(); max_rank + 1],
            queued: vec![false; ranks.len()],
            cursor: 0,
            len: 0,
        }
    }

    /// Queue an instance (no-op if already queued).
    pub fn push(&mut self, i: u32) {
        if self.queued[i as usize] {
            return;
        }
        self.queued[i as usize] = true;
        let r = self.ranks[i as usize] as usize;
        self.buckets[r].push_back(i);
        self.cursor = self.cursor.min(r);
        self.len += 1;
    }

    /// Pop the queued instance with the smallest rank.
    pub fn pop(&mut self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        while self.buckets[self.cursor].is_empty() {
            self.cursor += 1;
        }
        let i = self.buckets[self.cursor]
            .pop_front()
            .expect("non-empty bucket");
        self.queued[i as usize] = false;
        self.len -= 1;
        Some(i)
    }

    /// Prepare an (already drained) queue for reuse without reallocating.
    pub fn reset(&mut self) {
        debug_assert!(self.len == 0);
        self.cursor = 0;
    }

    /// Number of queued instances.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total heap capacity currently allocated across the rank buckets.
    /// Steady-state tests assert this stops growing once the queue is
    /// warm — the worklist must reuse its allocations across time-steps.
    pub fn allocated_capacity(&self) -> usize {
        self.buckets.iter().map(|b| b.capacity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tarjan_simple_chain() {
        // 0 -> 1 -> 2 : three singleton SCCs.
        let adj = vec![vec![1], vec![2], vec![]];
        let comp = tarjan_scc(&adj);
        assert_ne!(comp[0], comp[1]);
        assert_ne!(comp[1], comp[2]);
    }

    #[test]
    fn tarjan_cycle_collapses() {
        // 0 -> 1 -> 2 -> 0 plus 2 -> 3.
        let adj = vec![vec![1], vec![2], vec![0, 3], vec![]];
        let comp = tarjan_scc(&adj);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[2], comp[3]);
    }

    #[test]
    fn tarjan_self_loop_and_isolated() {
        let adj = vec![vec![0], vec![]];
        let comp = tarjan_scc(&adj);
        assert_ne!(comp[0], comp[1]);
    }

    #[test]
    fn rank_queue_orders_by_rank() {
        let ranks = vec![2, 0, 1];
        let mut q = RankQueue::new(&ranks);
        q.push(0);
        q.push(1);
        q.push(2);
        assert_eq!(q.pop(), Some(1)); // rank 0
        assert_eq!(q.pop(), Some(2)); // rank 1
        assert_eq!(q.pop(), Some(0)); // rank 2
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn rank_queue_cursor_moves_back() {
        let ranks = vec![0, 3];
        let mut q = RankQueue::new(&ranks);
        q.push(1);
        assert_eq!(q.pop(), Some(1));
        q.push(0); // lower rank after cursor advanced
        assert_eq!(q.pop(), Some(0));
        assert!(q.is_empty());
    }

    #[test]
    fn rank_queue_dedups() {
        let ranks = vec![0];
        let mut q = RankQueue::new(&ranks);
        q.push(0);
        q.push(0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
    }
}
