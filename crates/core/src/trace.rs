//! Ready-made [`Tracer`] implementations.
//!
//! The paper positions LSE as "an effective educational tool when
//! integrated with an interactive system visualizer" — the kernel's
//! [`Tracer`] hook is that integration point. These implementations cover
//! the two common needs: a human-readable event log and an in-memory
//! recording for programmatic inspection.

use crate::exec::Tracer;
use crate::value::Value;
use parking_lot_free::Mutex;
use std::io::Write;
use std::sync::Arc;

// The core crate avoids external deps beyond serde; std::sync::Mutex is
// fine at tracing rates.
mod parking_lot_free {
    pub use std::sync::Mutex;
}

/// Writes one line per transfer: `@cycle src -> dst: value`.
pub struct TextTracer<W: Write + Send> {
    out: W,
    /// Stop writing after this many events (0 = unbounded) so a
    /// long-running simulation cannot fill the disk by accident.
    limit: u64,
    written: u64,
}

impl<W: Write + Send> TextTracer<W> {
    /// Trace to any writer; `limit` caps the number of events
    /// (0 = unbounded).
    pub fn new(out: W, limit: u64) -> Self {
        TextTracer {
            out,
            limit,
            written: 0,
        }
    }
}

impl<W: Write + Send> Tracer for TextTracer<W> {
    fn transfer(&mut self, now: u64, src: &str, dst: &str, value: &Value) {
        if self.limit > 0 && self.written >= self.limit {
            return;
        }
        self.written += 1;
        let _ = writeln!(self.out, "@{now} {src} -> {dst}: {value}");
    }
}

/// One recorded transfer event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Time-step of the transfer.
    pub now: u64,
    /// Sender instance name.
    pub src: String,
    /// Receiver instance name.
    pub dst: String,
    /// A rendering of the value (values themselves are not kept to avoid
    /// retaining payload memory).
    pub value: String,
}

/// Records transfers into a shared buffer for programmatic inspection
/// (tests, visualizer front ends).
#[derive(Default)]
pub struct RecordingTracer {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl RecordingTracer {
    /// Create a tracer and the handle its events can be read through.
    pub fn new() -> (Self, TraceHandle) {
        let events: Arc<Mutex<Vec<TraceEvent>>> = Arc::default();
        (
            RecordingTracer {
                events: events.clone(),
            },
            TraceHandle { events },
        )
    }
}

/// Shared read handle for a [`RecordingTracer`].
#[derive(Clone)]
pub struct TraceHandle {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl TraceHandle {
    /// Snapshot of all recorded events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace lock").clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace lock").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Tracer for RecordingTracer {
    fn transfer(&mut self, now: u64, src: &str, dst: &str, value: &Value) {
        self.events.lock().expect("trace lock").push(TraceEvent {
            now,
            src: src.to_owned(),
            dst: dst.to_owned(),
            value: value.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;
    use crate::exec::{CommitCtx, ReactCtx, SchedKind, Simulator};
    use crate::module::{Module, ModuleSpec, PortId};
    use crate::netlist::NetlistBuilder;
    use crate::signal::Res;

    struct Src;
    impl Module for Src {
        fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
            ctx.send(PortId(0), 0, Value::Word(ctx.now()))
        }
        fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
    }
    struct Snk;
    impl Module for Snk {
        fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
            ctx.set_ack(PortId(0), 0, true)
        }
        fn commit(&mut self, ctx: &mut CommitCtx<'_>) -> Result<(), SimError> {
            let _ = matches!(ctx.data(PortId(0), 0), Res::Yes(_));
            Ok(())
        }
    }

    fn tiny_sim() -> Simulator {
        let mut b = NetlistBuilder::new();
        let s = b
            .add(
                "s",
                ModuleSpec::new("src").output("out", 1, 1),
                Box::new(Src),
            )
            .unwrap();
        let k = b
            .add("k", ModuleSpec::new("snk").input("in", 1, 1), Box::new(Snk))
            .unwrap();
        b.connect(s, "out", k, "in").unwrap();
        Simulator::new(b.build().unwrap(), SchedKind::Dynamic)
    }

    #[test]
    fn text_tracer_formats_and_limits() {
        let mut sim = tiny_sim();
        let buf: Vec<u8> = Vec::new();
        // Move the buffer in; read it back through a shared Vec is not
        // possible with Write by value, so trace to a Vec via a wrapper.
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        drop(buf);
        let store: Arc<Mutex<Vec<u8>>> = Arc::default();
        sim.set_tracer(Box::new(TextTracer::new(Shared(store.clone()), 2)));
        sim.run(5).unwrap();
        let text = String::from_utf8(store.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "limit respected: {text}");
        assert_eq!(lines[0], "@0 s -> k: 0");
        assert_eq!(lines[1], "@1 s -> k: 1");
    }

    #[test]
    fn recording_tracer_captures_events() {
        let mut sim = tiny_sim();
        let (tracer, handle) = RecordingTracer::new();
        sim.set_tracer(Box::new(tracer));
        assert!(handle.is_empty());
        sim.run(3).unwrap();
        let ev = handle.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[2].now, 2);
        assert_eq!(ev[2].src, "s");
        assert_eq!(ev[2].dst, "k");
        assert_eq!(ev[2].value, "2");
    }
}
