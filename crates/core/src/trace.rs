//! Ready-made trace sinks: a human-readable event log, an in-memory
//! recording, and a JSONL structured-event stream.
//!
//! The paper positions LSE as "an effective educational tool when
//! integrated with an interactive system visualizer" — the kernel's
//! [`crate::probe::Probe`] hook is that integration point. These sinks
//! cover the common needs; waveforms live in [`crate::vcd`] and hot-spot
//! attribution in [`crate::profile`].

use crate::netlist::{EdgeId, InstanceId};
use crate::probe::{json_escape, Probe, ResolvedBy, Tracer};
use crate::signal::Wire;
use crate::topology::Topology;
use crate::value::Value;
use parking_lot_free::Mutex;
use std::io::Write;
use std::sync::Arc;

// The core crate avoids external deps beyond serde; std::sync::Mutex is
// fine at tracing rates.
mod parking_lot_free {
    pub use std::sync::Mutex;
}

/// Writes one line per transfer: `@cycle src -> dst: value`.
pub struct TextTracer<W: Write + Send> {
    out: W,
    /// Stop writing after this many events (0 = unbounded) so a
    /// long-running simulation cannot fill the disk by accident.
    limit: u64,
    written: u64,
    truncated: bool,
}

impl<W: Write + Send> TextTracer<W> {
    /// Trace to any writer; `limit` caps the number of events
    /// (0 = unbounded).
    pub fn new(out: W, limit: u64) -> Self {
        TextTracer {
            out,
            limit,
            written: 0,
            truncated: false,
        }
    }
}

impl<W: Write + Send> Tracer for TextTracer<W> {
    fn transfer(&mut self, now: u64, src: &str, dst: &str, value: &Value) {
        if self.limit > 0 && self.written >= self.limit {
            // Say so once instead of silently dropping the tail.
            if !self.truncated {
                self.truncated = true;
                let _ = writeln!(self.out, "... trace truncated at {} events", self.limit);
                let _ = self.out.flush();
            }
            return;
        }
        self.written += 1;
        let _ = writeln!(self.out, "@{now} {src} -> {dst}: {value}");
    }
}

impl<W: Write + Send> Drop for TextTracer<W> {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// One recorded transfer event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Time-step of the transfer.
    pub now: u64,
    /// Sender instance name.
    pub src: String,
    /// Receiver instance name.
    pub dst: String,
    /// A rendering of the value (values themselves are not kept to avoid
    /// retaining payload memory).
    pub value: String,
}

/// Records transfers into a shared buffer for programmatic inspection
/// (tests, visualizer front ends).
#[derive(Default)]
pub struct RecordingTracer {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl RecordingTracer {
    /// Create a tracer and the handle its events can be read through.
    pub fn new() -> (Self, TraceHandle) {
        let events: Arc<Mutex<Vec<TraceEvent>>> = Arc::default();
        (
            RecordingTracer {
                events: events.clone(),
            },
            TraceHandle { events },
        )
    }
}

/// Shared read handle for a [`RecordingTracer`].
#[derive(Clone)]
pub struct TraceHandle {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl TraceHandle {
    /// Snapshot of all recorded events (clones the buffer; prefer
    /// [`TraceHandle::take`] when draining a long run).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace lock").clone()
    }

    /// Drain the recording buffer: returns everything recorded since the
    /// last drain and leaves the buffer empty, so a long run can be
    /// consumed incrementally without cloning an ever-growing `Vec`.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace lock"))
    }

    /// Discard everything recorded so far.
    pub fn clear(&self) {
        self.events.lock().expect("trace lock").clear();
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace lock").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Tracer for RecordingTracer {
    fn transfer(&mut self, now: u64, src: &str, dst: &str, value: &Value) {
        self.events.lock().expect("trace lock").push(TraceEvent {
            now,
            src: src.to_owned(),
            dst: dst.to_owned(),
            value: value.to_string(),
        });
    }
}

/// Structured-event sink: one JSON object per line, for programmatic
/// analysis (`jq`, notebooks, visualizer front ends).
///
/// Event kinds: `attach` (header: instance/edge census and the instance
/// name table), `step` / `step_end`, `resolve` (per-wire resolution with
/// polarity, payload rendering and source — module vs. default
/// semantics), `transfer`, `fault` / `inst_fault` (active fault-plan
/// injections), `quarantine` (instance isolation), `checkpoint` /
/// `restore` / `rollback` (the recovery machinery of `crate::snapshot`),
/// `cancel` (a governed run observed its cancellation token, see
/// `crate::supervisor`), and — when enabled with
/// [`JsonlProbe::with_handlers`] — `react` / `commit` handler brackets.
///
/// When the consumer may be slower than the producer, wrap the writer in
/// a [`crate::supervisor::BackpressureWriter`]: the stream is
/// line-oriented, so its bounded buffer sheds or stalls on whole-record
/// boundaries and the surviving output stays parseable.
///
/// [`JsonlProbe::canonical`] restricts the stream to the
/// scheduler-independent subset (everything except `resolve` and the
/// handler brackets, whose ordering depends on the reaction schedule):
/// two runs of the same netlist under the same fault plan produce
/// byte-identical canonical streams regardless of scheduler — the
/// deterministic-replay oracle the chaos harness asserts on.
pub struct JsonlProbe<W: Write + Send> {
    out: W,
    handlers: bool,
    canonical: bool,
}

impl<W: Write + Send> JsonlProbe<W> {
    /// Stream events to any writer.
    pub fn new(out: W) -> Self {
        JsonlProbe {
            out,
            handlers: false,
            canonical: false,
        }
    }

    /// Also emit per-handler `react` / `commit` enter events (verbose:
    /// one line per handler invocation).
    pub fn with_handlers(mut self) -> Self {
        self.handlers = true;
        self
    }

    /// Emit only the scheduler-independent event subset (drops `resolve`
    /// and handler brackets), so equal seeds yield byte-identical
    /// streams across schedulers.
    pub fn canonical(mut self) -> Self {
        self.canonical = true;
        self.handlers = false;
        self
    }
}

fn wire_name(w: Wire) -> &'static str {
    match w {
        Wire::Data => "data",
        Wire::Enable => "enable",
        Wire::Ack => "ack",
    }
}

impl<W: Write + Send> Probe for JsonlProbe<W> {
    fn attach(&mut self, topo: &Topology) {
        let names: Vec<String> = topo
            .instance_names()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect();
        let _ = writeln!(
            self.out,
            "{{\"t\":\"attach\",\"instances\":{},\"edges\":{},\"names\":[{}]}}",
            topo.instance_count(),
            topo.edge_count(),
            names.join(",")
        );
    }

    fn step_begin(&mut self, now: u64) {
        let _ = writeln!(self.out, "{{\"t\":\"step\",\"now\":{now}}}");
    }

    fn step_end(&mut self, now: u64) {
        let _ = writeln!(self.out, "{{\"t\":\"step_end\",\"now\":{now}}}");
    }

    fn react_enter(&mut self, now: u64, inst: InstanceId) {
        if self.handlers {
            let _ = writeln!(
                self.out,
                "{{\"t\":\"react\",\"now\":{now},\"inst\":{}}}",
                inst.0
            );
        }
    }

    fn commit_enter(&mut self, now: u64, inst: InstanceId) {
        if self.handlers {
            let _ = writeln!(
                self.out,
                "{{\"t\":\"commit\",\"now\":{now},\"inst\":{}}}",
                inst.0
            );
        }
    }

    fn signal_resolved(
        &mut self,
        now: u64,
        edge: EdgeId,
        wire: Wire,
        yes: bool,
        value: Option<&Value>,
        by: ResolvedBy,
    ) {
        if self.canonical {
            return;
        }
        let by_s = match by {
            ResolvedBy::Module(i) => format!("{}", i.0),
            ResolvedBy::Default => "\"default\"".to_owned(),
        };
        let val_s = match value {
            Some(v) => format!(",\"value\":\"{}\"", json_escape(&v.to_string())),
            None => String::new(),
        };
        let _ = writeln!(
            self.out,
            "{{\"t\":\"resolve\",\"now\":{now},\"edge\":{},\"wire\":\"{}\",\"yes\":{yes}{val_s},\"by\":{by_s}}}",
            edge.0,
            wire_name(wire),
        );
    }

    fn transfer(&mut self, now: u64, edge: EdgeId, src: &str, dst: &str, value: &Value) {
        let _ = writeln!(
            self.out,
            "{{\"t\":\"transfer\",\"now\":{now},\"edge\":{},\"src\":\"{}\",\"dst\":\"{}\",\"value\":\"{}\"}}",
            edge.0,
            json_escape(src),
            json_escape(dst),
            json_escape(&value.to_string()),
        );
    }

    fn fault_injected(
        &mut self,
        now: u64,
        edge: EdgeId,
        wire: Wire,
        kind: crate::fault::FaultKind,
    ) {
        let _ = writeln!(
            self.out,
            "{{\"t\":\"fault\",\"now\":{now},\"edge\":{},\"wire\":\"{}\",\"kind\":\"{}\"}}",
            edge.0,
            wire_name(wire),
            kind.label(),
        );
    }

    fn instance_fault(&mut self, now: u64, inst: InstanceId, kind: &str) {
        let _ = writeln!(
            self.out,
            "{{\"t\":\"inst_fault\",\"now\":{now},\"inst\":{},\"kind\":\"{}\"}}",
            inst.0,
            json_escape(kind),
        );
    }

    fn quarantined(&mut self, now: u64, inst: InstanceId, reason: &str) {
        let _ = writeln!(
            self.out,
            "{{\"t\":\"quarantine\",\"now\":{now},\"inst\":{},\"reason\":\"{}\"}}",
            inst.0,
            json_escape(reason),
        );
    }

    fn checkpointed(&mut self, now: u64) {
        let _ = writeln!(self.out, "{{\"t\":\"checkpoint\",\"now\":{now}}}");
    }

    fn restored(&mut self, now: u64) {
        let _ = writeln!(self.out, "{{\"t\":\"restore\",\"now\":{now}}}");
    }

    fn rolled_back(&mut self, now: u64, to: u64, reason: &str) {
        let _ = writeln!(
            self.out,
            "{{\"t\":\"rollback\",\"now\":{now},\"to\":{to},\"reason\":\"{}\"}}",
            json_escape(reason),
        );
    }

    fn run_cancelled(&mut self, now: u64) {
        let _ = writeln!(self.out, "{{\"t\":\"cancel\",\"now\":{now}}}");
    }
}

impl<W: Write + Send> Drop for JsonlProbe<W> {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;
    use crate::exec::{CommitCtx, ReactCtx, SchedKind, Simulator};
    use crate::module::{Module, ModuleSpec, PortId};
    use crate::netlist::NetlistBuilder;
    use crate::signal::Res;

    struct Src;
    impl Module for Src {
        fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
            ctx.send(PortId(0), 0, Value::Word(ctx.now()))
        }
        fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
    }
    struct Snk;
    impl Module for Snk {
        fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
            ctx.set_ack(PortId(0), 0, true)
        }
        fn commit(&mut self, ctx: &mut CommitCtx<'_>) -> Result<(), SimError> {
            let _ = matches!(ctx.data(PortId(0), 0), Res::Yes(_));
            Ok(())
        }
    }

    fn tiny_sim() -> Simulator {
        let mut b = NetlistBuilder::new();
        let s = b
            .add(
                "s",
                ModuleSpec::new("src").output("out", 1, 1),
                Box::new(Src),
            )
            .unwrap();
        let k = b
            .add("k", ModuleSpec::new("snk").input("in", 1, 1), Box::new(Snk))
            .unwrap();
        b.connect(s, "out", k, "in").unwrap();
        Simulator::new(b.build().unwrap(), SchedKind::Dynamic)
    }

    /// Shared byte buffer implementing Write, for reading sink output
    /// back out of a moved-in writer.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    impl Shared {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn text_tracer_formats_and_limits() {
        let mut sim = tiny_sim();
        let store = Shared::default();
        sim.set_tracer(Box::new(TextTracer::new(store.clone(), 2)));
        sim.run(5).unwrap();
        let text = store.text();
        let lines: Vec<&str> = text.lines().collect();
        // Two events, then a single truncation marker — not silence.
        assert_eq!(lines.len(), 3, "2 events + marker: {text}");
        assert_eq!(lines[0], "@0 s -> k: 0");
        assert_eq!(lines[1], "@1 s -> k: 1");
        assert_eq!(lines[2], "... trace truncated at 2 events");
    }

    #[test]
    fn text_tracer_unbounded_has_no_marker() {
        let mut sim = tiny_sim();
        let store = Shared::default();
        sim.set_tracer(Box::new(TextTracer::new(store.clone(), 0)));
        sim.run(4).unwrap();
        let text = store.text();
        assert_eq!(text.lines().count(), 4);
        assert!(!text.contains("truncated"));
    }

    #[test]
    fn recording_tracer_captures_events() {
        let mut sim = tiny_sim();
        let (tracer, handle) = RecordingTracer::new();
        sim.set_tracer(Box::new(tracer));
        assert!(handle.is_empty());
        sim.run(3).unwrap();
        let ev = handle.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[2].now, 2);
        assert_eq!(ev[2].src, "s");
        assert_eq!(ev[2].dst, "k");
        assert_eq!(ev[2].value, "2");
    }

    #[test]
    fn trace_handle_take_drains_and_clear_discards() {
        let mut sim = tiny_sim();
        let (tracer, handle) = RecordingTracer::new();
        sim.set_tracer(Box::new(tracer));
        sim.run(3).unwrap();
        let first = handle.take();
        assert_eq!(first.len(), 3);
        assert!(handle.is_empty(), "take drains the buffer");
        sim.run(2).unwrap();
        let second = handle.take();
        assert_eq!(second.len(), 2);
        assert_eq!(second[0].now, 3, "drained runs resume where they left");
        sim.run(1).unwrap();
        handle.clear();
        assert!(handle.is_empty());
    }

    #[test]
    fn jsonl_probe_streams_structured_events() {
        let mut sim = tiny_sim();
        let store = Shared::default();
        sim.set_probe(Box::new(JsonlProbe::new(store.clone())));
        sim.run(2).unwrap();
        drop(sim); // flush
        let text = store.text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines[0].starts_with("{\"t\":\"attach\",\"instances\":2,\"edges\":1"),
            "{text}"
        );
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        // Per step: step + 3 resolutions + 1 transfer + step_end = 6.
        assert_eq!(lines.len(), 1 + 2 * 6, "{text}");
        assert!(text.contains("\"wire\":\"data\""));
        assert!(text.contains("\"t\":\"transfer\""));
        assert!(!text.contains("\"t\":\"react\""), "handlers off by default");
    }

    #[test]
    fn jsonl_probe_handler_events_opt_in() {
        let mut sim = tiny_sim();
        let store = Shared::default();
        sim.set_probe(Box::new(JsonlProbe::new(store.clone()).with_handlers()));
        sim.run(1).unwrap();
        let text = store.text();
        assert!(text.contains("\"t\":\"react\""), "{text}");
        assert!(text.contains("\"t\":\"commit\""), "{text}");
    }
}
