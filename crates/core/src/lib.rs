//! # liberty-core
//!
//! The simulation kernel of a Rust reproduction of the **Liberty Simulation
//! Environment** (August, Malik, Peh, Pai — *Achieving Structural and
//! Composable Modeling of Complex Systems*, IPDPS 2004).
//!
//! LSE builds executable simulators from *structural* descriptions:
//! customized instances of reusable module templates, connected by ports.
//! This crate provides everything below the component libraries:
//!
//! * [`value::Value`] — the dynamic payload type that makes modules from
//!   different domains connectable without prior planning;
//! * [`signal`] — the three-signal (data/enable/ack) connection contract
//!   with monotonic within-time-step resolution;
//! * [`module`] — the two-phase (`react`/`commit`) concurrent module trait
//!   and port/template specifications;
//! * [`netlist`] — validated flat netlists built by hand or by the LSS
//!   elaborator (`liberty-lss`);
//! * the layered kernel — [`topology`] (immutable structure: CSR wake
//!   tables, flattened port slabs, cached static ranks), [`store`] (the
//!   epoch-stamped per-timestep signal arena with O(1) reset), and
//!   [`exec`] (the five schedulers, default control semantics for
//!   partial specifications, and the activity-gated commit phase);
//! * [`sched`] — the static netlist analysis that accelerates the reaction
//!   phase (paper ref [22]) — and [`compile`], which condenses that
//!   analysis into a [`compile::CompiledPlan`] executed without any
//!   per-step worklist (plus a level-parallel variant);
//! * the observability layer — [`probe`] (the `Probe` event-stream trait
//!   with zero cost when absent), [`trace`] (text + JSONL sinks),
//!   [`vcd`] (GTKWave waveforms) and [`profile`] (per-module hot spots);
//! * [`snapshot`] — versioned, checksummed checkpoints of the full
//!   simulator state, the substrate of the roll-back recovery path and
//!   the golden-state regression corpus;
//! * [`supervisor`] — run governance: cooperative budgets and deadlines,
//!   external cancellation, the retry/backoff escalation ladder over the
//!   checkpoint machinery, structured run reports, and bounded
//!   backpressure for probe sinks;
//! * [`params`] / [`registry`] — algorithmic parameters and the template
//!   registry the component libraries populate.
//!
//! ## A two-module simulator in a dozen lines
//!
//! ```
//! use liberty_core::prelude::*;
//!
//! // A source that sends its cycle number, and a sink that sums words.
//! struct Src;
//! impl Module for Src {
//!     fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
//!         ctx.send(PortId(0), 0, Value::Word(ctx.now()))
//!     }
//!     fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> { Ok(()) }
//! }
//! struct Sink { total: u64 }
//! impl Module for Sink {
//!     fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
//!         ctx.set_ack(PortId(0), 0, true)
//!     }
//!     fn commit(&mut self, ctx: &mut CommitCtx<'_>) -> Result<(), SimError> {
//!         if let Some(v) = ctx.transferred_in(PortId(0), 0) {
//!             self.total += v.as_word().unwrap_or(0);
//!             ctx.count("received", 1);
//!         }
//!         Ok(())
//!     }
//! }
//!
//! let mut b = NetlistBuilder::new();
//! let src = b.add("src", ModuleSpec::new("src").output("out", 1, 1), Box::new(Src)).unwrap();
//! let snk = b.add("snk", ModuleSpec::new("sink").input("in", 1, 1), Box::new(Sink { total: 0 })).unwrap();
//! b.connect(src, "out", snk, "in").unwrap();
//! let mut sim = Simulator::new(b.build().unwrap(), SchedKind::Dynamic);
//! sim.run(4).unwrap();
//! assert_eq!(sim.stats().counter(snk, "received"), 4);
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod error;
pub mod exec;
pub mod fault;
pub mod kernel;
pub mod module;
pub mod netlist;
pub mod params;
pub mod pool;
pub mod probe;
pub mod profile;
pub mod registry;
pub mod sched;
pub mod signal;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod supervisor;
pub mod topology;
pub mod trace;
pub mod value;
pub mod vcd;

/// Convenience re-exports for module and system authors.
pub mod prelude {
    pub use crate::compile::{CompiledPlan, PlanLevel, PlanNode};
    pub use crate::error::{CheckpointError, DivergenceInfo, OscillatingWire, PanicInfo, SimError};
    pub use crate::exec::{CommitCtx, EngineMetrics, ReactCtx, SchedKind, Simulator, Tracer};
    pub use crate::fault::{
        FailurePolicy, FaultKind, FaultPlan, InstFaultKind, InstanceFault, SignalFault,
    };
    pub use crate::kernel::{AluFn, InstanceSummary, KernelHint, PlanSummary, SinkCollect};
    pub use crate::module::{Dir, Module, ModuleSpec, PortId, PortSpec};
    pub use crate::netlist::{EdgeId, Endpoint, InstanceId, Netlist, NetlistBuilder};
    pub use crate::params::{ParamValue, Params};
    pub use crate::probe::{
        CountingProbe, MultiProbe, Probe, ProbeCounts, ProbeCountsHandle, ResolvedBy, TracerProbe,
    };
    pub use crate::profile::{ProfileHandle, ProfileProbe, ProfileReport, Profiler};
    pub use crate::registry::{Instantiated, Registry, Template};
    pub use crate::signal::{Res, SignalState, Wire, WireWrite, WriteOutcome};
    pub use crate::snapshot::{Snapshot, StateReader, StateWriter};
    pub use crate::stats::{Histogram, Sample, Stats, StatsReport};
    pub use crate::store::SignalStore;
    pub use crate::supervisor::{
        BackpressureWriter, BudgetKind, CancelToken, MemoryGauge, RetryCause, RetryPolicy,
        RunBudget, RunOutcome, RunReport, SinkPolicy, SinkStats,
    };
    pub use crate::topology::{InstanceInfo, Topology};
    pub use crate::trace::{JsonlProbe, RecordingTracer, TextTracer, TraceEvent, TraceHandle};
    pub use crate::value::Value;
    pub use crate::vcd::VcdProbe;
}
