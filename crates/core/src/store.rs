//! The per-timestep signal valuation: an epoch-stamped arena.
//!
//! The naive kernel reset every connection's three wires at the start of
//! every time-step — an O(edges) sweep that dominates idle netlists. The
//! arena instead stamps each slot with the epoch (time-step serial) it was
//! last written in:
//!
//! * **begin_step** bumps a single counter — O(1) regardless of netlist
//!   size;
//! * a **read** of a slot whose stamp is stale returns `Unknown`, exactly
//!   what an explicit reset would have produced;
//! * a **write** lazily freshens the slot (resets its wires, restamps it)
//!   before applying, so only the edges actually touched in a step cost
//!   any slot traffic.
//!
//! The store also owns the **per-step transfer list**: every write goes
//! through [`SignalStore::write_with`], which records the edge the moment
//! a newly-resolved wire completes its three-way handshake. Because wire
//! resolution is monotonic, that moment occurs exactly once per edge per
//! step — the list is duplicate-free by construction. The commit phase
//! reads it to mark active instances, feed the tracer, and maintain
//! per-edge transfer counts without rescanning every edge.

use crate::error::SimError;
use crate::netlist::EdgeId;
use crate::signal::{Res, SignalState, WireWrite, WriteOutcome};
use crate::value::Value;

#[derive(Clone, Debug, Default)]
struct Slot {
    state: SignalState,
    stamp: u64,
}

/// Epoch-stamped arena of [`SignalState`]s, one per edge.
#[derive(Debug, Default)]
pub struct SignalStore {
    slots: Vec<Slot>,
    /// Current time-step serial. Starts at 1 so freshly allocated slots
    /// (stamp 0) are stale, i.e. read as `Unknown`.
    epoch: u64,
    transfers: Vec<EdgeId>,
    slot_writes: u64,
    /// Wires newly resolved this step. Monotonicity bounds it by
    /// `3 * len()`; hitting that bound means every wire is resolved and
    /// the default phase has nothing to sweep for.
    resolved: u64,
    /// Set when an oscillation-tolerant write re-resolved a wire this
    /// step: the transfer list may then hold duplicates or stale entries
    /// and must be repaired by [`SignalStore::finalize_transfers`].
    osc_dirty: bool,
}

impl SignalStore {
    /// An arena for `n_edges` connections, all wires `Unknown`.
    pub fn new(n_edges: usize) -> Self {
        SignalStore {
            slots: vec![Slot::default(); n_edges],
            epoch: 1,
            transfers: Vec::new(),
            slot_writes: 0,
            resolved: 0,
            osc_dirty: false,
        }
    }

    /// Number of connections in the arena.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the arena holds no connections.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Start a new time-step: one counter bump, no slot traffic.
    #[inline]
    pub fn begin_step(&mut self) {
        self.epoch += 1;
        self.transfers.clear();
        self.resolved = 0;
        self.osc_dirty = false;
    }

    /// True once every wire of every edge resolved this step — the
    /// default phase can then skip its cursor sweep entirely. Oscillation
    /// breaks the one-resolution-per-wire invariant the counter relies
    /// on, so a dirtied step conservatively reports `false`.
    #[inline]
    pub fn fully_resolved_step(&self) -> bool {
        !self.osc_dirty && self.resolved == 3 * self.slots.len() as u64
    }

    #[inline]
    fn fresh(&self, e: EdgeId) -> Option<&SignalState> {
        let slot = &self.slots[e.0 as usize];
        (slot.stamp == self.epoch).then_some(&slot.state)
    }

    /// Current resolution of the data wire (`Unknown` when untouched this
    /// step). Returns a clone; `Value` payloads are reference counted.
    #[inline]
    pub fn data(&self, e: EdgeId) -> Res<Value> {
        self.fresh(e).map_or(Res::Unknown, |s| s.data.clone())
    }

    /// Current resolution of the enable wire.
    #[inline]
    pub fn enable(&self, e: EdgeId) -> Res<()> {
        self.fresh(e).map_or(Res::Unknown, |s| s.enable.clone())
    }

    /// Current resolution of the ack wire.
    #[inline]
    pub fn ack(&self, e: EdgeId) -> Res<()> {
        self.fresh(e).map_or(Res::Unknown, |s| s.ack.clone())
    }

    /// True once all three wires of the edge resolved this step.
    #[inline]
    pub fn is_fully_resolved(&self, e: EdgeId) -> bool {
        self.fresh(e)
            .is_some_and(|s| s.data.is_resolved() && s.enable.is_resolved() && s.ack.is_resolved())
    }

    /// True iff a transfer completes on the edge this step.
    #[inline]
    pub fn transfers_on(&self, e: EdgeId) -> bool {
        self.fresh(e).is_some_and(|s| s.transfers())
    }

    /// The transferred value, if the edge's handshake completed this step.
    #[inline]
    pub fn transferred(&self, e: EdgeId) -> Option<&Value> {
        self.fresh(e).and_then(|s| s.transferred())
    }

    /// Apply a monotonic wire write. The slot is lazily freshened first;
    /// when the write completes the edge's three-way handshake, the edge
    /// is appended to the per-step transfer list.
    #[inline]
    pub fn write_with(
        &mut self,
        e: EdgeId,
        f: impl FnOnce(&mut SignalState) -> Result<WriteOutcome, SimError>,
    ) -> Result<WriteOutcome, SimError> {
        let slot = &mut self.slots[e.0 as usize];
        if slot.stamp != self.epoch {
            slot.state.reset();
            slot.stamp = self.epoch;
            self.slot_writes += 1;
        }
        let outcome = f(&mut slot.state)?;
        if outcome == WriteOutcome::NewlyResolved {
            self.slot_writes += 1;
            self.resolved += 1;
            if slot.state.transfers() {
                self.transfers.push(e);
            }
        }
        Ok(outcome)
    }

    /// Apply a [`WireWrite`] under the strict monotonic discipline,
    /// maintaining the per-step transfer list like
    /// [`SignalStore::write_with`].
    ///
    /// First-touch fast path: when the slot is stale (this is the first
    /// write on the edge this step), all three wires are by definition
    /// `Unknown`, so the write can neither conflict (no monotonicity
    /// comparison — for `Value` payloads that comparison is a deep
    /// equality walk) nor complete the three-way handshake (no transfer
    /// probe). The module hot path — one fresh resolution per wire per
    /// step — therefore runs branch-light and, for scalar values, without
    /// touching any `Arc` refcount.
    #[inline]
    pub fn write(&mut self, e: EdgeId, w: WireWrite) -> Result<WriteOutcome, SimError> {
        let slot = &mut self.slots[e.0 as usize];
        if slot.stamp != self.epoch {
            slot.state.reset();
            slot.stamp = self.epoch;
            self.slot_writes += 1;
            slot.state.resolve_first(w)?;
            self.slot_writes += 1;
            self.resolved += 1;
            return Ok(WriteOutcome::NewlyResolved);
        }
        let outcome = slot.state.write(w)?;
        if outcome == WriteOutcome::NewlyResolved {
            self.slot_writes += 1;
            self.resolved += 1;
            if slot.state.transfers() {
                self.transfers.push(e);
            }
        }
        Ok(outcome)
    }

    /// Apply the sender's data and enable wires in one slot access — the
    /// fused form of `ctx.send` / `ctx.send_nothing`, the hottest write
    /// in the kernel. On first touch (the overwhelmingly common case:
    /// one sender resolving its output exactly once per step) this costs
    /// a single stamp check and no monotonicity comparison; a fresh slot
    /// falls back to two strict per-wire writes. The ack wire is
    /// necessarily `Unknown` on the first-touch path, so no transfer can
    /// complete there and the transfer-list probe is skipped too.
    #[inline]
    pub fn write_pair(
        &mut self,
        e: EdgeId,
        data: Res<Value>,
        enable: Res<()>,
    ) -> Result<(WriteOutcome, WriteOutcome), SimError> {
        if matches!(data, Res::Unknown) || matches!(enable, Res::Unknown) {
            return Err(SimError::contract(
                "attempt to drive a sender wire back to Unknown".to_owned(),
            ));
        }
        let SignalStore {
            slots,
            epoch,
            transfers,
            slot_writes,
            resolved,
            ..
        } = self;
        let slot = &mut slots[e.0 as usize];
        if slot.stamp != *epoch {
            slot.state.reset();
            slot.stamp = *epoch;
            slot.state.data = data;
            slot.state.enable = enable;
            *slot_writes += 3;
            *resolved += 2;
            return Ok((WriteOutcome::NewlyResolved, WriteOutcome::NewlyResolved));
        }
        let o1 = slot.state.write_data(data)?;
        if o1 == WriteOutcome::NewlyResolved {
            *slot_writes += 1;
            *resolved += 1;
            if slot.state.transfers() {
                transfers.push(e);
            }
        }
        let o2 = slot.state.write_enable(enable)?;
        if o2 == WriteOutcome::NewlyResolved {
            *slot_writes += 1;
            *resolved += 1;
            if slot.state.transfers() {
                transfers.push(e);
            }
        }
        Ok((o1, o2))
    }

    /// Fused receiver operation: drive the ack wire and read the data
    /// wire in one slot access — the store half of `ReactCtx::recv`.
    /// Exactly equivalent to a strict ack write followed by a data read,
    /// just without the second slot lookup.
    #[inline]
    pub fn recv(
        &mut self,
        e: EdgeId,
        ack: Res<()>,
    ) -> Result<(WriteOutcome, Res<Value>), SimError> {
        if matches!(ack, Res::Unknown) {
            return Err(SimError::contract(
                "attempt to drive Ack back to Unknown".to_owned(),
            ));
        }
        let SignalStore {
            slots,
            epoch,
            transfers,
            slot_writes,
            resolved,
            ..
        } = self;
        let slot = &mut slots[e.0 as usize];
        if slot.stamp != *epoch {
            slot.state.reset();
            slot.stamp = *epoch;
            slot.state.ack = ack;
            *slot_writes += 2;
            *resolved += 1;
            // Data and enable are Unknown on a freshly reset slot: no
            // transfer can have completed, and the data read is Unknown.
            return Ok((WriteOutcome::NewlyResolved, Res::Unknown));
        }
        let o = slot.state.write_ack(ack)?;
        if o == WriteOutcome::NewlyResolved {
            *slot_writes += 1;
            *resolved += 1;
            if slot.state.transfers() {
                transfers.push(e);
            }
        }
        Ok((o, slot.state.data.clone()))
    }

    /// Apply a [`WireWrite`] tolerating oscillation (see
    /// [`SignalState::write_tolerant`]). An oscillated wire may complete
    /// *or break* an already-recorded handshake, so the transfer list is
    /// marked dirty and repaired lazily by
    /// [`SignalStore::finalize_transfers`] before the commit phase reads
    /// it.
    #[inline]
    pub fn write_tolerant(&mut self, e: EdgeId, w: WireWrite) -> Result<WriteOutcome, SimError> {
        let slot = &mut self.slots[e.0 as usize];
        if slot.stamp != self.epoch {
            slot.state.reset();
            slot.stamp = self.epoch;
            self.slot_writes += 1;
        }
        let outcome = slot.state.write_tolerant(w)?;
        match outcome {
            WriteOutcome::NewlyResolved => {
                self.slot_writes += 1;
                self.resolved += 1;
                if slot.state.transfers() {
                    self.transfers.push(e);
                }
            }
            WriteOutcome::Oscillated => {
                self.slot_writes += 1;
                self.osc_dirty = true;
                // The flip may have *created* a completed handshake; a
                // possible duplicate (or a broken, stale entry) is fixed
                // up in finalize_transfers().
                if slot.state.transfers() {
                    self.transfers.push(e);
                }
            }
            WriteOutcome::Idempotent => {}
        }
        Ok(outcome)
    }

    /// Repair the transfer list after oscillation-tolerant writes: drop
    /// entries whose handshake no longer completes and deduplicate. A
    /// no-op (and O(1)) unless an oscillated write dirtied the list this
    /// step; the repaired list is in edge-id order.
    pub fn finalize_transfers(&mut self) {
        if !self.osc_dirty {
            return;
        }
        self.osc_dirty = false;
        let mut list = std::mem::take(&mut self.transfers);
        list.sort_unstable_by_key(|e| e.0);
        list.dedup();
        list.retain(|&e| self.transfers_on(e));
        self.transfers = list;
    }

    /// Credit the resolution counter for wires resolved outside the
    /// store's slots — the specialized kernels' unboxed fast lanes
    /// (`crate::kernel`). Fast-lane edges never touch their slots, so
    /// without the credit [`SignalStore::fully_resolved_step`] could
    /// never report true on a plan with specialized instances and the
    /// default phase would sweep every step.
    #[inline]
    pub(crate) fn credit_fast_resolved(&mut self, wires: u64) {
        self.resolved += wires;
    }

    /// Edges whose transfer completed this step, in resolution order.
    /// Duplicate-free (monotonicity: the handshake completes exactly once).
    #[inline]
    pub fn transfers(&self) -> &[EdgeId] {
        &self.transfers
    }

    /// Total slot mutations (lazy freshens + newly-resolved writes) since
    /// construction. Exposed so tests can verify that starting a time-step
    /// costs zero slot traffic.
    pub fn slot_writes(&self) -> u64 {
        self.slot_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E0: EdgeId = EdgeId(0);
    const E1: EdgeId = EdgeId(1);

    fn complete(store: &mut SignalStore, e: EdgeId, v: u64) {
        store
            .write_with(e, |s| s.write_data(Res::Yes(Value::Word(v))))
            .unwrap();
        store
            .write_with(e, |s| s.write_enable(Res::Yes(())))
            .unwrap();
        store.write_with(e, |s| s.write_ack(Res::Yes(()))).unwrap();
    }

    #[test]
    fn fresh_store_reads_unknown() {
        let store = SignalStore::new(2);
        assert_eq!(store.data(E0), Res::Unknown);
        assert_eq!(store.enable(E1), Res::Unknown);
        assert_eq!(store.ack(E0), Res::Unknown);
        assert!(!store.is_fully_resolved(E0));
        assert!(!store.transfers_on(E0));
    }

    #[test]
    fn begin_step_staleness_reads_as_reset() {
        let mut store = SignalStore::new(2);
        complete(&mut store, E0, 7);
        assert!(store.transfers_on(E0));
        store.begin_step();
        // No slot was touched, yet every read sees a reset wire.
        assert_eq!(store.data(E0), Res::Unknown);
        assert!(!store.transfers_on(E0));
        assert!(store.transfers().is_empty());
    }

    #[test]
    fn begin_step_costs_zero_slot_writes() {
        // The acceptance test for O(1) reset: an idle time-step (begin,
        // nothing driven) performs no slot mutation at all, independent of
        // how many edges exist or how many were dirtied before.
        let mut store = SignalStore::new(64);
        for i in 0..64 {
            complete(&mut store, EdgeId(i), u64::from(i));
        }
        let dirtied = store.slot_writes();
        assert!(dirtied > 0);
        store.begin_step();
        assert_eq!(
            store.slot_writes(),
            dirtied,
            "starting a step must not write any slot"
        );
        for i in 0..64 {
            assert_eq!(store.data(EdgeId(i)), Res::Unknown);
        }
    }

    #[test]
    fn write_lazily_freshens_only_touched_slot() {
        let mut store = SignalStore::new(2);
        complete(&mut store, E0, 1);
        complete(&mut store, E1, 2);
        store.begin_step();
        let before = store.slot_writes();
        store.write_with(E0, |s| s.write_data(Res::No)).unwrap();
        // One freshen + one resolved write, both on the touched slot only.
        assert_eq!(store.slot_writes(), before + 2);
        assert_eq!(store.data(E0), Res::No);
        assert_eq!(store.data(E1), Res::Unknown, "untouched slot stays stale");
    }

    #[test]
    fn transfer_list_records_each_edge_once() {
        let mut store = SignalStore::new(3);
        complete(&mut store, E1, 5);
        // Idempotent re-writes after completion must not duplicate.
        store.write_with(E1, |s| s.write_ack(Res::Yes(()))).unwrap();
        complete(&mut store, E0, 6);
        assert_eq!(store.transfers(), &[E1, E0], "resolution order, one-shot");
        assert_eq!(store.transferred(E1).and_then(Value::as_word), Some(5));
    }

    #[test]
    fn incomplete_handshake_not_recorded() {
        let mut store = SignalStore::new(1);
        store
            .write_with(E0, |s| s.write_data(Res::Yes(Value::Word(9))))
            .unwrap();
        store
            .write_with(E0, |s| s.write_enable(Res::Yes(())))
            .unwrap();
        store.write_with(E0, |s| s.write_ack(Res::No)).unwrap();
        assert!(store.transfers().is_empty());
        assert!(store.transferred(E0).is_none());
    }

    #[test]
    fn value_write_matches_closure_write() {
        let mut store = SignalStore::new(1);
        assert_eq!(
            store
                .write(E0, WireWrite::Data(Res::Yes(Value::Word(3))))
                .unwrap(),
            WriteOutcome::NewlyResolved
        );
        assert_eq!(store.data(E0).as_yes().and_then(Value::as_word), Some(3));
        assert!(store.write(E0, WireWrite::Data(Res::No)).is_err());
    }

    #[test]
    fn tolerant_write_repairs_transfer_list() {
        let mut store = SignalStore::new(2);
        complete(&mut store, E0, 7);
        assert_eq!(store.transfers(), &[E0]);
        // Break the recorded handshake by flipping ack to No.
        assert_eq!(
            store.write_tolerant(E0, WireWrite::Ack(Res::No)).unwrap(),
            WriteOutcome::Oscillated
        );
        store.finalize_transfers();
        assert!(store.transfers().is_empty(), "broken handshake dropped");
        // Flip it back: the handshake completes again, recorded once.
        store
            .write_tolerant(E0, WireWrite::Ack(Res::Yes(())))
            .unwrap();
        complete(&mut store, E1, 8);
        store.finalize_transfers();
        assert_eq!(store.transfers(), &[E0, E1], "deduped, edge-id order");
        // With no oscillation this step, finalize is a no-op.
        store.begin_step();
        complete(&mut store, E1, 9);
        store.finalize_transfers();
        assert_eq!(store.transfers(), &[E1]);
    }

    #[test]
    fn monotonicity_violations_surface_through_write_with() {
        let mut store = SignalStore::new(1);
        store.write_with(E0, |s| s.write_data(Res::No)).unwrap();
        assert!(store
            .write_with(E0, |s| s.write_data(Res::Yes(Value::Word(1))))
            .is_err());
    }
}
