//! Three-signal connection state and the monotonic resolution discipline.
//!
//! Every LSE connection is really three wires (paper §2.1): a **data** wire
//! and an **enable** wire driven by the sender, and an **ack** wire driven
//! by the receiver. Within one time-step each wire resolves *monotonically*
//! from [`Res::Unknown`] to either [`Res::No`] or [`Res::Yes`]; once
//! resolved it may not change. This is the strict-but-general communication
//! contract that lets independently developed components interoperate: a
//! transfer happens in a time-step iff all three wires resolve to `Yes`.

use crate::error::SimError;
use crate::value::Value;

/// Resolution state of one wire within a time-step.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Res<T> {
    /// Not yet driven this time-step.
    #[default]
    Unknown,
    /// Resolved: nothing (no data / not enabled / not accepted).
    No,
    /// Resolved: present, with the wire's payload.
    Yes(T),
}

impl<T> Res<T> {
    /// True once the wire has resolved to `No` or `Yes`.
    pub fn is_resolved(&self) -> bool {
        !matches!(self, Res::Unknown)
    }

    /// True iff resolved to `Yes`.
    pub fn is_yes(&self) -> bool {
        matches!(self, Res::Yes(_))
    }

    /// True iff resolved to `No`.
    pub fn is_no(&self) -> bool {
        matches!(self, Res::No)
    }

    /// The payload if resolved `Yes`.
    pub fn as_yes(&self) -> Option<&T> {
        match self {
            Res::Yes(v) => Some(v),
            _ => None,
        }
    }
}

/// Which of the three wires of a connection a write touched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wire {
    /// Payload wire, sender-driven.
    Data,
    /// Qualification wire, sender-driven (may be derived from control).
    Enable,
    /// Flow-control wire, receiver-driven.
    Ack,
}

/// State of one connection (all three wires) within the current time-step.
#[derive(Clone, Debug, Default)]
pub struct SignalState {
    /// Sender-driven payload wire.
    pub data: Res<Value>,
    /// Sender-driven qualification wire.
    pub enable: Res<()>,
    /// Receiver-driven flow-control wire.
    pub ack: Res<()>,
}

/// Outcome of a monotonic write attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The wire resolved for the first time; readers must be re-woken.
    NewlyResolved,
    /// The wire was already resolved to an equal value; no-op.
    Idempotent,
    /// Oscillation-tolerant mode only: the wire was already resolved to a
    /// *different* value and has been re-resolved to the new one. Readers
    /// must be re-woken; the convergence watchdog counts these.
    Oscillated,
}

/// A wire write as a value (rather than a closure), so the kernel can
/// inspect and transform it in flight — the interception point for
/// handshake-level fault injection.
#[derive(Clone, Debug, PartialEq)]
pub enum WireWrite {
    /// Drive the data wire.
    Data(Res<Value>),
    /// Drive the enable wire.
    Enable(Res<()>),
    /// Drive the ack wire.
    Ack(Res<()>),
}

impl WireWrite {
    /// Which of the three wires this write targets.
    pub fn wire(&self) -> Wire {
        match self {
            WireWrite::Data(_) => Wire::Data,
            WireWrite::Enable(_) => Wire::Enable,
            WireWrite::Ack(_) => Wire::Ack,
        }
    }
}

impl SignalState {
    /// Reset all three wires to `Unknown` for a new time-step.
    pub fn reset(&mut self) {
        self.data = Res::Unknown;
        self.enable = Res::Unknown;
        self.ack = Res::Unknown;
    }

    /// True iff a transfer completes on this connection this time-step:
    /// data present, enabled, and accepted.
    pub fn transfers(&self) -> bool {
        self.data.is_yes() && self.enable.is_yes() && self.ack.is_yes()
    }

    /// The transferred value, if [`SignalState::transfers`].
    pub fn transferred(&self) -> Option<&Value> {
        if self.enable.is_yes() && self.ack.is_yes() {
            self.data.as_yes()
        } else {
            None
        }
    }

    /// Drive the data wire. Monotonic: `Unknown -> No|Yes` only, with
    /// idempotent re-writes of an equal value allowed.
    pub fn write_data(&mut self, v: Res<Value>) -> Result<WriteOutcome, SimError> {
        Self::write_wire(&mut self.data, v, Wire::Data)
    }

    /// Drive the enable wire.
    pub fn write_enable(&mut self, v: Res<()>) -> Result<WriteOutcome, SimError> {
        Self::write_wire(&mut self.enable, v, Wire::Enable)
    }

    /// Drive the ack wire.
    pub fn write_ack(&mut self, v: Res<()>) -> Result<WriteOutcome, SimError> {
        Self::write_wire(&mut self.ack, v, Wire::Ack)
    }

    /// Apply a [`WireWrite`] under the strict monotonic discipline.
    pub fn write(&mut self, w: WireWrite) -> Result<WriteOutcome, SimError> {
        match w {
            WireWrite::Data(v) => self.write_data(v),
            WireWrite::Enable(v) => self.write_enable(v),
            WireWrite::Ack(v) => self.write_ack(v),
        }
    }

    /// Apply a [`WireWrite`] tolerating oscillation: a conflicting write
    /// re-resolves the wire instead of erroring, reported as
    /// [`WriteOutcome::Oscillated`]. Driving a wire back to `Unknown` is
    /// still a contract violation. This is the watchdog's execution mode:
    /// cyclically inconsistent specifications keep stepping until the
    /// iteration budget runs out, at which point the oscillation counts
    /// name the guilty wires.
    pub fn write_tolerant(&mut self, w: WireWrite) -> Result<WriteOutcome, SimError> {
        match w {
            WireWrite::Data(v) => Self::write_wire_tolerant(&mut self.data, v, Wire::Data),
            WireWrite::Enable(v) => Self::write_wire_tolerant(&mut self.enable, v, Wire::Enable),
            WireWrite::Ack(v) => Self::write_wire_tolerant(&mut self.ack, v, Wire::Ack),
        }
    }

    /// Apply a [`WireWrite`] to a freshly reset state. The caller (the
    /// store's first-touch fast path) guarantees all three wires are
    /// `Unknown`, so the monotonicity comparison — and, for `Value`
    /// payloads, the deep equality walk it implies — is skipped entirely.
    /// Driving a wire to `Unknown` is still rejected.
    #[inline]
    pub(crate) fn resolve_first(&mut self, w: WireWrite) -> Result<(), SimError> {
        let unknown = matches!(
            &w,
            WireWrite::Data(Res::Unknown)
                | WireWrite::Enable(Res::Unknown)
                | WireWrite::Ack(Res::Unknown)
        );
        if unknown {
            return Err(SimError::contract(format!(
                "attempt to drive {:?} back to Unknown",
                w.wire()
            )));
        }
        match w {
            WireWrite::Data(v) => {
                debug_assert!(!self.data.is_resolved(), "first-touch contract");
                self.data = v;
            }
            WireWrite::Enable(v) => {
                debug_assert!(!self.enable.is_resolved(), "first-touch contract");
                self.enable = v;
            }
            WireWrite::Ack(v) => {
                debug_assert!(!self.ack.is_resolved(), "first-touch contract");
                self.ack = v;
            }
        }
        Ok(())
    }

    fn write_wire<T: PartialEq + std::fmt::Debug>(
        slot: &mut Res<T>,
        v: Res<T>,
        wire: Wire,
    ) -> Result<WriteOutcome, SimError> {
        if matches!(v, Res::Unknown) {
            return Err(SimError::contract(format!(
                "attempt to drive {wire:?} back to Unknown"
            )));
        }
        match slot {
            Res::Unknown => {
                *slot = v;
                Ok(WriteOutcome::NewlyResolved)
            }
            old if *old == v => Ok(WriteOutcome::Idempotent),
            old => Err(SimError::contract(format!(
                "non-monotonic write on {wire:?}: already {old:?}, new {v:?}"
            ))),
        }
    }

    fn write_wire_tolerant<T: PartialEq + std::fmt::Debug>(
        slot: &mut Res<T>,
        v: Res<T>,
        wire: Wire,
    ) -> Result<WriteOutcome, SimError> {
        if matches!(v, Res::Unknown) {
            return Err(SimError::contract(format!(
                "attempt to drive {wire:?} back to Unknown"
            )));
        }
        match slot {
            Res::Unknown => {
                *slot = v;
                Ok(WriteOutcome::NewlyResolved)
            }
            old if *old == v => Ok(WriteOutcome::Idempotent),
            old => {
                *old = v;
                Ok(WriteOutcome::Oscillated)
            }
        }
    }

    /// Apply end-of-phase default control semantics (paper §2.1):
    /// undriven data resolves to `No` (nothing sent), undriven enable
    /// mirrors data, and undriven ack resolves to `Yes` (accept anything).
    /// Returns true if any wire changed.
    pub fn apply_defaults(&mut self) -> bool {
        let mut changed = false;
        if !self.data.is_resolved() {
            self.data = Res::No;
            changed = true;
        }
        if !self.enable.is_resolved() {
            self.enable = if self.data.is_yes() {
                Res::Yes(())
            } else {
                Res::No
            };
            changed = true;
        }
        if !self.ack.is_resolved() {
            self.ack = Res::Yes(());
            changed = true;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_is_unknown() {
        let s = SignalState::default();
        assert!(!s.data.is_resolved());
        assert!(!s.enable.is_resolved());
        assert!(!s.ack.is_resolved());
        assert!(!s.transfers());
    }

    #[test]
    fn monotonic_write_ok() {
        let mut s = SignalState::default();
        assert_eq!(
            s.write_data(Res::Yes(Value::Word(1))).unwrap(),
            WriteOutcome::NewlyResolved
        );
        assert_eq!(
            s.write_data(Res::Yes(Value::Word(1))).unwrap(),
            WriteOutcome::Idempotent
        );
    }

    #[test]
    fn non_monotonic_write_is_contract_violation() {
        let mut s = SignalState::default();
        s.write_data(Res::No).unwrap();
        assert!(s.write_data(Res::Yes(Value::Word(1))).is_err());
        let mut s2 = SignalState::default();
        s2.write_ack(Res::Yes(())).unwrap();
        assert!(s2.write_ack(Res::No).is_err());
    }

    #[test]
    fn cannot_unresolve() {
        let mut s = SignalState::default();
        assert!(s.write_data(Res::Unknown).is_err());
    }

    #[test]
    fn transfer_requires_all_three() {
        let mut s = SignalState::default();
        s.write_data(Res::Yes(Value::Word(9))).unwrap();
        assert!(!s.transfers());
        s.write_enable(Res::Yes(())).unwrap();
        assert!(!s.transfers());
        s.write_ack(Res::Yes(())).unwrap();
        assert!(s.transfers());
        assert_eq!(s.transferred().unwrap().as_word(), Some(9));
    }

    #[test]
    fn rejected_transfer_has_no_value() {
        let mut s = SignalState::default();
        s.write_data(Res::Yes(Value::Word(9))).unwrap();
        s.write_enable(Res::Yes(())).unwrap();
        s.write_ack(Res::No).unwrap();
        assert!(!s.transfers());
        assert!(s.transferred().is_none());
    }

    #[test]
    fn defaults_complete_a_bare_send() {
        // Sender drove data only; defaults must complete the handshake
        // (default control semantics: accept everything).
        let mut s = SignalState::default();
        s.write_data(Res::Yes(Value::Word(5))).unwrap();
        assert!(s.apply_defaults());
        assert!(s.transfers());
    }

    #[test]
    fn defaults_on_silent_connection() {
        let mut s = SignalState::default();
        s.apply_defaults();
        assert!(s.data.is_no());
        assert!(s.enable.is_no());
        assert!(s.ack.is_yes());
        assert!(!s.transfers());
    }

    #[test]
    fn tolerant_write_oscillates_instead_of_erroring() {
        let mut s = SignalState::default();
        assert_eq!(
            s.write_tolerant(WireWrite::Data(Res::No)).unwrap(),
            WriteOutcome::NewlyResolved
        );
        assert_eq!(
            s.write_tolerant(WireWrite::Data(Res::Yes(Value::Word(1))))
                .unwrap(),
            WriteOutcome::Oscillated
        );
        assert_eq!(s.data.as_yes().and_then(Value::as_word), Some(1));
        // Equal re-writes stay idempotent even in tolerant mode.
        assert_eq!(
            s.write_tolerant(WireWrite::Data(Res::Yes(Value::Word(1))))
                .unwrap(),
            WriteOutcome::Idempotent
        );
        // Unresolving is illegal in every mode.
        assert!(s.write_tolerant(WireWrite::Data(Res::Unknown)).is_err());
    }

    #[test]
    fn wire_write_names_its_wire() {
        assert_eq!(WireWrite::Data(Res::No).wire(), Wire::Data);
        assert_eq!(WireWrite::Enable(Res::Yes(())).wire(), Wire::Enable);
        assert_eq!(WireWrite::Ack(Res::No).wire(), Wire::Ack);
    }

    #[test]
    fn reset_clears_all() {
        let mut s = SignalState::default();
        s.write_data(Res::Yes(Value::Unit)).unwrap();
        s.apply_defaults();
        s.reset();
        assert!(!s.data.is_resolved());
        assert!(!s.enable.is_resolved());
        assert!(!s.ack.is_resolved());
    }
}
