//! The observability surface of the kernel: the [`Probe`] trait.
//!
//! The paper positions LSE as "an effective educational tool when
//! integrated with an interactive system visualizer", and the fixed
//! reactive MoC is what makes the netlist *analyzable*: every wire of
//! every connection resolves exactly once per time-step, so the complete
//! behaviour of a simulation is a well-defined event stream. A [`Probe`]
//! taps that stream:
//!
//! * **step_begin / step_end** bracket each time-step;
//! * **react_enter / react_exit** and **commit_enter / commit_exit**
//!   bracket every handler invocation (the hooks a profiler needs);
//! * **signal_resolved** fires once per wire per step, the moment the
//!   data/enable/ack wire of a connection resolves — with the source
//!   distinguishing a module's own write from the kernel's default
//!   control semantics (paper §2.1);
//! * **transfer** fires once per completed three-way handshake.
//!
//! All methods default to no-ops, so a probe implements only what it
//! needs. Ready-made sinks live in [`crate::trace`] (text + JSONL),
//! [`crate::vcd`] (GTKWave waveforms) and [`crate::profile`] (per-module
//! hot-spot attribution).
//!
//! **Cost when absent.** The kernel specializes its reaction loop on
//! probe presence at compile time (a const-generic dispatch hoisted out
//! of the hot loop), so a simulator without a probe executes literally no
//! probe code per handler invocation — see the probe-overhead table in
//! `docs/OBSERVABILITY.md`.

use crate::fault::FaultKind;
use crate::netlist::{EdgeId, InstanceId};
use crate::signal::Wire;
use crate::topology::Topology;
use crate::value::Value;

/// Who resolved a wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolvedBy {
    /// A module's `react` handler drove the wire.
    Module(InstanceId),
    /// The kernel's default control semantics resolved the wire after
    /// reaction quiescence (paper §2.2: partial specifications execute).
    Default,
}

/// Observer of the kernel's full event stream. Every method is a no-op by
/// default; implement only the events you need.
///
/// Probes are attached with [`crate::exec::Simulator::set_probe`]; the
/// kernel calls [`Probe::attach`] once so sinks can precompute per-edge
/// state (the VCD writer emits its header there).
#[allow(unused_variables)]
pub trait Probe: Send {
    /// Called once when the probe is installed on a simulator.
    fn attach(&mut self, topo: &Topology) {}

    /// A time-step is starting.
    fn step_begin(&mut self, now: u64) {}

    /// A time-step completed (all wires resolved, commits done).
    fn step_end(&mut self, now: u64) {}

    /// A `react` handler is about to run.
    fn react_enter(&mut self, now: u64, inst: InstanceId) {}

    /// A `react` handler returned.
    fn react_exit(&mut self, now: u64, inst: InstanceId) {}

    /// A `commit` handler is about to run.
    fn commit_enter(&mut self, now: u64, inst: InstanceId) {}

    /// A `commit` handler returned.
    fn commit_exit(&mut self, now: u64, inst: InstanceId) {}

    /// One wire of one connection resolved this step. `yes` is the
    /// resolution polarity; `value` carries the payload for a data wire
    /// resolving `Yes` (enable/ack and `No` resolutions pass `None`).
    fn signal_resolved(
        &mut self,
        now: u64,
        edge: EdgeId,
        wire: Wire,
        yes: bool,
        value: Option<&Value>,
        by: ResolvedBy,
    ) {
    }

    /// A three-way handshake completed on `edge` this step (reported in
    /// edge-id order at the end of the commit phase).
    fn transfer(&mut self, now: u64, edge: EdgeId, src: &str, dst: &str, value: &Value) {}

    /// A wire-level fault from the installed fault plan is active on
    /// `(edge, wire)` this step (reported at step begin, in `(edge,
    /// wire)` order).
    fn fault_injected(&mut self, now: u64, edge: EdgeId, wire: Wire, kind: FaultKind) {}

    /// An instance-level fault (`"panic"` or `"latency"`) is active on
    /// `inst` this step (reported at step begin, in instance-id order).
    fn instance_fault(&mut self, now: u64, inst: InstanceId, kind: &str) {}

    /// `inst` was isolated by the quarantine policy; its handlers will
    /// not run again and its ports fall back to the default control
    /// semantics (reported at step end, in instance-id order).
    fn quarantined(&mut self, now: u64, inst: InstanceId, reason: &str) {}

    /// A checkpoint of the full simulator state was taken after step
    /// `now - 1` completed (i.e. the snapshot resumes at step `now`).
    fn checkpointed(&mut self, now: u64) {}

    /// The simulator state was replaced from a checkpoint; the next step
    /// executed will be `now`.
    fn restored(&mut self, now: u64) {}

    /// The recovery path rewound the run: a failure at step `now` caused
    /// a restore back to step `to` (always ≤ `now`), after masking the
    /// offending fault-plan entries. `reason` describes the trigger.
    fn rolled_back(&mut self, now: u64, to: u64, reason: &str) {}

    /// A governed run observed its [`crate::supervisor::CancelToken`]
    /// tripped and is exiting at the step boundary before step `now`
    /// (after draining in-flight work and taking a final checkpoint).
    fn run_cancelled(&mut self, now: u64) {}
}

/// Observer of completed transfers only — the original, narrow tracing
/// interface. Kept for compatibility; internally every tracer is adapted
/// into a [`Probe`] by [`TracerProbe`].
pub trait Tracer: Send {
    /// Called once per completed transfer at the end of each time-step.
    fn transfer(&mut self, now: u64, src: &str, dst: &str, value: &Value);
}

/// Compat shim: lifts a [`Tracer`] into the [`Probe`] world (only the
/// `transfer` event is forwarded).
pub struct TracerProbe(Box<dyn Tracer>);

impl TracerProbe {
    /// Wrap a tracer.
    pub fn new(t: Box<dyn Tracer>) -> Self {
        TracerProbe(t)
    }
}

impl Probe for TracerProbe {
    fn transfer(&mut self, now: u64, _edge: EdgeId, src: &str, dst: &str, value: &Value) {
        self.0.transfer(now, src, dst, value);
    }
}

/// Fan-out probe: forwards every event to each attached probe in order,
/// so `--trace --vcd --profile` can all observe one run.
#[derive(Default)]
pub struct MultiProbe {
    probes: Vec<Box<dyn Probe>>,
}

impl MultiProbe {
    /// Empty fan-out.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a probe to the fan-out.
    pub fn push(&mut self, p: Box<dyn Probe>) {
        self.probes.push(p);
    }

    /// Number of attached probes.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// True when no probes are attached.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// The sole probe, unwrapped, when exactly one is attached — lets
    /// front ends skip the fan-out indirection for a single sink.
    pub fn into_single(mut self) -> Result<Box<dyn Probe>, Self> {
        if self.probes.len() == 1 {
            Ok(self.probes.pop().expect("len checked"))
        } else {
            Err(self)
        }
    }
}

impl Probe for MultiProbe {
    fn attach(&mut self, topo: &Topology) {
        for p in &mut self.probes {
            p.attach(topo);
        }
    }
    fn step_begin(&mut self, now: u64) {
        for p in &mut self.probes {
            p.step_begin(now);
        }
    }
    fn step_end(&mut self, now: u64) {
        for p in &mut self.probes {
            p.step_end(now);
        }
    }
    fn react_enter(&mut self, now: u64, inst: InstanceId) {
        for p in &mut self.probes {
            p.react_enter(now, inst);
        }
    }
    fn react_exit(&mut self, now: u64, inst: InstanceId) {
        for p in &mut self.probes {
            p.react_exit(now, inst);
        }
    }
    fn commit_enter(&mut self, now: u64, inst: InstanceId) {
        for p in &mut self.probes {
            p.commit_enter(now, inst);
        }
    }
    fn commit_exit(&mut self, now: u64, inst: InstanceId) {
        for p in &mut self.probes {
            p.commit_exit(now, inst);
        }
    }
    fn signal_resolved(
        &mut self,
        now: u64,
        edge: EdgeId,
        wire: Wire,
        yes: bool,
        value: Option<&Value>,
        by: ResolvedBy,
    ) {
        for p in &mut self.probes {
            p.signal_resolved(now, edge, wire, yes, value, by);
        }
    }
    fn transfer(&mut self, now: u64, edge: EdgeId, src: &str, dst: &str, value: &Value) {
        for p in &mut self.probes {
            p.transfer(now, edge, src, dst, value);
        }
    }
    fn fault_injected(&mut self, now: u64, edge: EdgeId, wire: Wire, kind: FaultKind) {
        for p in &mut self.probes {
            p.fault_injected(now, edge, wire, kind);
        }
    }
    fn instance_fault(&mut self, now: u64, inst: InstanceId, kind: &str) {
        for p in &mut self.probes {
            p.instance_fault(now, inst, kind);
        }
    }
    fn quarantined(&mut self, now: u64, inst: InstanceId, reason: &str) {
        for p in &mut self.probes {
            p.quarantined(now, inst, reason);
        }
    }
    fn checkpointed(&mut self, now: u64) {
        for p in &mut self.probes {
            p.checkpointed(now);
        }
    }
    fn restored(&mut self, now: u64) {
        for p in &mut self.probes {
            p.restored(now);
        }
    }
    fn rolled_back(&mut self, now: u64, to: u64, reason: &str) {
        for p in &mut self.probes {
            p.rolled_back(now, to, reason);
        }
    }
    fn run_cancelled(&mut self, now: u64) {
        for p in &mut self.probes {
            p.run_cancelled(now);
        }
    }
}

/// Event counters, shared through [`ProbeCountsHandle`]. The cheapest
/// possible real sink — the benchmark's stand-in for "a probe is
/// attached" when measuring observation overhead, and a convenient
/// invariant check in tests (e.g. resolutions = 3 × edges × steps).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeCounts {
    /// `step_begin` events seen.
    pub steps: u64,
    /// `react_enter` events seen.
    pub reacts: u64,
    /// `commit_enter` events seen.
    pub commits: u64,
    /// `signal_resolved` events seen.
    pub resolutions: u64,
    /// `signal_resolved` events attributed to the default semantics.
    pub defaults: u64,
    /// `transfer` events seen.
    pub transfers: u64,
    /// `fault_injected` + `instance_fault` events seen.
    pub faults: u64,
    /// `quarantined` events seen.
    pub quarantines: u64,
    /// `checkpointed` events seen.
    pub checkpoints: u64,
    /// `restored` events seen.
    pub restores: u64,
    /// `rolled_back` events seen.
    pub rollbacks: u64,
    /// `run_cancelled` events seen.
    pub cancels: u64,
}

/// Counting probe; create with [`CountingProbe::new`].
pub struct CountingProbe {
    counts: std::sync::Arc<std::sync::Mutex<ProbeCounts>>,
}

/// Read handle for a [`CountingProbe`].
#[derive(Clone)]
pub struct ProbeCountsHandle {
    counts: std::sync::Arc<std::sync::Mutex<ProbeCounts>>,
}

impl ProbeCountsHandle {
    /// Snapshot of the counters.
    pub fn get(&self) -> ProbeCounts {
        *self.counts.lock().expect("probe counts lock")
    }
}

impl CountingProbe {
    /// Create the probe and its read handle.
    pub fn new() -> (Self, ProbeCountsHandle) {
        let counts = std::sync::Arc::new(std::sync::Mutex::new(ProbeCounts::default()));
        (
            CountingProbe {
                counts: counts.clone(),
            },
            ProbeCountsHandle { counts },
        )
    }
}

impl Probe for CountingProbe {
    fn step_begin(&mut self, _now: u64) {
        self.counts.lock().expect("probe counts lock").steps += 1;
    }
    fn react_enter(&mut self, _now: u64, _inst: InstanceId) {
        self.counts.lock().expect("probe counts lock").reacts += 1;
    }
    fn commit_enter(&mut self, _now: u64, _inst: InstanceId) {
        self.counts.lock().expect("probe counts lock").commits += 1;
    }
    fn signal_resolved(
        &mut self,
        _now: u64,
        _edge: EdgeId,
        _wire: Wire,
        _yes: bool,
        _value: Option<&Value>,
        by: ResolvedBy,
    ) {
        let mut c = self.counts.lock().expect("probe counts lock");
        c.resolutions += 1;
        if by == ResolvedBy::Default {
            c.defaults += 1;
        }
    }
    fn transfer(&mut self, _now: u64, _edge: EdgeId, _src: &str, _dst: &str, _value: &Value) {
        self.counts.lock().expect("probe counts lock").transfers += 1;
    }
    fn fault_injected(&mut self, _now: u64, _edge: EdgeId, _wire: Wire, _kind: FaultKind) {
        self.counts.lock().expect("probe counts lock").faults += 1;
    }
    fn instance_fault(&mut self, _now: u64, _inst: InstanceId, _kind: &str) {
        self.counts.lock().expect("probe counts lock").faults += 1;
    }
    fn quarantined(&mut self, _now: u64, _inst: InstanceId, _reason: &str) {
        self.counts.lock().expect("probe counts lock").quarantines += 1;
    }
    fn checkpointed(&mut self, _now: u64) {
        self.counts.lock().expect("probe counts lock").checkpoints += 1;
    }
    fn restored(&mut self, _now: u64) {
        self.counts.lock().expect("probe counts lock").restores += 1;
    }
    fn rolled_back(&mut self, _now: u64, _to: u64, _reason: &str) {
        self.counts.lock().expect("probe counts lock").rollbacks += 1;
    }
    fn run_cancelled(&mut self, _now: u64) {
        self.counts.lock().expect("probe counts lock").cancels += 1;
    }
}

/// Escape a string for inclusion in a JSON string literal (quotes,
/// backslashes and control characters). Shared by the JSONL sink and the
/// front ends' `--metrics-out` writer.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain.name[0]"), "plain.name[0]");
    }

    #[test]
    fn multi_probe_single_unwraps() {
        let mut m = MultiProbe::new();
        assert!(m.is_empty());
        let (c, _h) = CountingProbe::new();
        m.push(Box::new(c));
        assert_eq!(m.len(), 1);
        assert!(m.into_single().is_ok());
        let mut m2 = MultiProbe::new();
        let (c1, _h1) = CountingProbe::new();
        let (c2, _h2) = CountingProbe::new();
        m2.push(Box::new(c1));
        m2.push(Box::new(c2));
        assert!(m2.into_single().is_err());
    }
}
