//! The execution layer: schedulers, phases, and the module-facing
//! contexts (LSE's reactive model of computation).
//!
//! A [`Simulator`] is the thin mutable layer over an immutable
//! [`Topology`] and an epoch-stamped [`SignalStore`]. Each time-step:
//!
//! 1. **Reaction phase** — module `react` handlers run (possibly several
//!    times each) until no more wires can resolve. Wires resolve
//!    monotonically; the fixed point is unique for monotone modules, so the
//!    result is independent of scheduling order.
//! 2. **Default resolution** — any wire still `Unknown` at quiescence gets
//!    the default control semantics (data `No`, enable mirrors data, ack
//!    `Yes`), *one wire at a time*, resuming reactions after each, so a
//!    module woken by a default can still drive its own wires. This is what
//!    makes partial specifications executable (paper §2.2).
//! 3. **Commit phase** — `commit` handlers run once and update internal
//!    state from the completed transfers. Templates that declared
//!    [`crate::module::ModuleSpec::commit_only_when_active`] are skipped
//!    unless they were an endpoint of a completed transfer this step or
//!    self-report [`Module::pending`]; the transfer set is a property of
//!    the unique fixed point, so the skip decision is identical under
//!    every scheduler.
//!
//! The three dynamic schedulers (naive sweep, dynamic FIFO, static rank
//! order — paper ref [22]) share one worklist/wake infrastructure: newly
//! resolved wires are looked up in the topology's CSR reader tables and
//! the readers are re-queued. The two compiled schedulers instead execute
//! a pre-analyzed [`CompiledPlan`]: acyclic instances react exactly once,
//! in topological order, with no worklist at all; cyclic SCCs run bounded
//! local fixed-point islands; `CompiledParallel` additionally fans
//! independent same-level plan segments across a small owned thread pool
//! with buffered writes merged in plan order. All five reach the same
//! fixed point; they differ only in handler re-invocation counts and
//! wall-clock.

use crate::compile::{CompiledPlan, PlanNode};
use crate::error::{CheckpointError, DivergenceInfo, OscillatingWire, PanicInfo, SimError};
use crate::fault::{apply_fault, wire_idx, ActiveFaults, CompiledFaults, FailurePolicy, FaultPlan};
use crate::kernel::{self, Kernel, Lane, PlanSummary, SpecState};
use crate::module::{Dir, Module, PortId};
use crate::netlist::{EdgeId, InstanceId, Netlist};
use crate::pool::WorkerPool;
use crate::probe::{Probe, ResolvedBy, TracerProbe};
use crate::sched::RankQueue;
use crate::signal::{Res, Wire, WireWrite, WriteOutcome};
use crate::snapshot::Snapshot;
use crate::stats::{Stats, StatsReport};
use crate::store::SignalStore;
use crate::supervisor::{
    BudgetKind, CancelToken, MemoryGauge, RetryCause, RetryPolicy, RunBudget, RunOutcome,
    RunReport, SupervisorState,
};
use crate::topology::{InstanceInfo, PortMeta, Topology};
use crate::value::Value;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

pub use crate::probe::Tracer;

/// Which reaction-phase scheduler to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedKind {
    /// Naive repeated full sweeps until quiescence — the unoptimized
    /// baseline a simulator constructor starts from (no wake tracking).
    Sweep,
    /// FIFO worklist; wakes only the readers of newly resolved wires.
    Dynamic,
    /// Rank-ordered worklist from a topological analysis of the netlist
    /// (SCC condensation); the optimization of paper ref [22].
    Static,
    /// Statically compiled plan ([`CompiledPlan`]): acyclic instances
    /// react exactly once per step in topological order with no worklist
    /// or wake-table probing; cyclic SCCs run bounded local fixed-point
    /// islands. The logical conclusion of ref [22]'s analysis.
    Compiled,
    /// [`SchedKind::Compiled`], with independent same-level plan segments
    /// executed across a small owned thread pool (see
    /// [`Simulator::set_parallelism`]). Writes are buffered per partition
    /// and merged in plan order at level barriers, so results — including
    /// probe streams — are deterministic and identical to the serial
    /// schedulers. Falls back to the serial compiled path when a probe,
    /// fault plan or watchdog is installed, or when only one thread is
    /// available.
    CompiledParallel,
}

/// Invocation counters exposed for the scheduler-optimization experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EngineMetrics {
    /// Time-steps executed.
    pub steps: u64,
    /// Total `react` handler invocations.
    pub reacts: u64,
    /// Total `commit` handler invocations.
    pub commits: u64,
    /// Wires resolved by the default control semantics.
    pub defaults: u64,
    /// Fault activations applied by an installed [`FaultPlan`] (one per
    /// active plan entry per step).
    pub faults_injected: u64,
    /// Instances isolated by [`FailurePolicy::Quarantine`] so far.
    pub quarantines: u64,
}

/// Per-run resilience state: only allocated once a fault plan, watchdog
/// or failure policy is installed — a plain simulator carries a single
/// `None` and the monomorphized hot path never looks at it.
struct ResilState {
    plan: Option<CompiledFaults>,
    policy: FailurePolicy,
    /// Watchdog budget: max `react` invocations per step. Setting it also
    /// switches writes to the oscillation-tolerant mode so cyclically
    /// inconsistent specs iterate (and get diagnosed) instead of dying on
    /// the first non-monotonic write.
    max_iters: Option<u64>,
    quarantined: Vec<bool>,
    /// Faults active in the current step (rebuilt at step begin).
    active: ActiveFaults,
    /// `react` invocations consumed this step (the watchdog's clock).
    iters: u64,
    /// Per-(edge, wire) conflicting re-resolutions this step.
    osc: BTreeMap<(u32, u8), u64>,
    /// Quarantines performed this step, flushed to the probe in
    /// instance-id order at step end (keeps probe streams byte-identical
    /// across schedulers).
    pending_q: Vec<(u32, String)>,
}

/// Checkpoint / recovery configuration plus the in-memory rollback
/// target. Boxed behind an `Option` exactly like [`ResilState`]: a
/// simulator that never checkpoints carries a single `None`, `run`
/// checks it once per step at the step *boundary*, and nothing changes
/// inside the monomorphized reaction loops — the checkpoint-off hot
/// path stays on the kernel baseline.
struct CheckpointState {
    /// Auto-checkpoint period in steps (0 = explicit snapshots only).
    every: u64,
    /// When set, every auto checkpoint is also written (atomically) to
    /// `<dir>/step-<now>.ckpt`.
    dir: Option<std::path::PathBuf>,
    /// The most recent checkpoint — the roll-back-and-retry target.
    last: Option<Arc<Snapshot>>,
    /// Retry failures by restoring `last` and masking the offending
    /// fault-plan entries, instead of staying quarantined / aborting.
    rollback: bool,
    /// Instances a rollback was already attempted for. A second failure
    /// of the same instance keeps the quarantine: an organic failure
    /// (not plan-injected) replays identically, so retrying again would
    /// loop forever.
    attempted_insts: Vec<u32>,
    /// Edges whose faults were already masked for divergence recovery.
    attempted_edges: Vec<u32>,
    /// Rollbacks performed so far (diagnostics).
    rollbacks: u64,
}

impl CheckpointState {
    fn new() -> Self {
        CheckpointState {
            every: 0,
            dir: None,
            last: None,
            rollback: false,
            attempted_insts: Vec::new(),
            attempted_edges: Vec::new(),
            rollbacks: 0,
        }
    }
}

/// Reusable worklist storage shared by the reaction and default phases.
/// Only the variant matching the scheduler is populated.
#[derive(Default)]
struct WorkState {
    fifo: VecDeque<u32>,
    queued: Vec<bool>,
    ranked: Option<RankQueue>,
}

/// A side effect recorded by one parallel partition during a level burst,
/// applied serially — in plan order — at the level barrier.
enum BufOp {
    /// A wire drive (instance id for error attribution at merge).
    Write(u32, EdgeId, WireWrite),
    /// [`ReactCtx::count`].
    Count(u32, &'static str, u64),
    /// [`ReactCtx::sample`].
    Sample(u32, &'static str, f64),
    /// [`ReactCtx::histo`].
    Histo(u32, &'static str, u64),
}

/// One partition's reusable effect buffer for a parallel level burst.
#[derive(Default)]
struct ReactBuffer {
    ops: Vec<BufOp>,
    reacts: u64,
}

impl ReactBuffer {
    fn clear(&mut self) {
        self.ops.clear();
        self.reacts = 0;
    }
}

/// The executable simulator (paper Fig. 1's "Simulator Executable").
pub struct Simulator {
    topo: Arc<Topology>,
    modules: Vec<Box<dyn Module>>,
    store: SignalStore,
    stats: Stats,
    now: u64,
    sched: SchedKind,
    work: WorkState,
    metrics: EngineMetrics,
    probe: Option<Box<dyn Probe>>,
    wake_buf: Vec<(EdgeId, Wire)>,
    /// Scratch per-instance activity flags for the commit phase; cleared
    /// proportionally to the transfer list, never swept.
    active: Vec<bool>,
    /// Cumulative per-edge completed-transfer counts.
    transfer_counts: Vec<u64>,
    /// Fault-injection / watchdog / quarantine state; `None` (the
    /// default) keeps the hot path on the fault-free monomorphization.
    resil: Option<Box<ResilState>>,
    /// Checkpoint / recovery state; `None` (the default) keeps `run` on
    /// the plain fixed-cycle loop.
    ckpt: Option<Box<CheckpointState>>,
    /// Run-governance state (budgets, cancellation, retry policy);
    /// `None` (the default) keeps `run` off the governed loop entirely —
    /// one branch per run call, zero per-step cost.
    sup: Option<Box<SupervisorState>>,
    /// The compiled invocation plan (compiled schedulers only; shared
    /// via the topology's cache).
    plan: Option<Arc<CompiledPlan>>,
    /// Specialized-kernel state for `SchedKind::Compiled`: the
    /// classification, the unboxed lane table, and (while live) the
    /// materialized kernels. `None` when nothing classified as eligible,
    /// so fully dynamic plans pay nothing.
    spec: Option<Box<SpecState>>,
    /// Master switch for handler specialization (default on); see
    /// [`Simulator::set_specialization`].
    spec_enabled: bool,
    /// Requested parallelism for [`SchedKind::CompiledParallel`],
    /// including the caller's thread; `0` = auto-detect.
    threads: usize,
    /// Lazily spawned worker pool for the parallel scheduler.
    pool: Option<WorkerPool>,
    /// Per-partition write/stat buffers, reused across levels and steps.
    par_bufs: Vec<ReactBuffer>,
}

impl Simulator {
    /// Construct a simulator from a validated netlist (convenience over
    /// [`Simulator::from_parts`]).
    pub fn new(net: Netlist, sched: SchedKind) -> Self {
        let (topo, modules) = net.into_parts();
        Self::from_parts(Arc::new(topo), modules, sched)
    }

    /// The layered constructor: run `modules` over a (possibly shared)
    /// immutable topology. Sharing one `Arc<Topology>` between simulators
    /// reuses the CSR wake tables and the cached static-schedule ranks.
    pub fn from_parts(
        topo: Arc<Topology>,
        modules: Vec<Box<dyn Module>>,
        sched: SchedKind,
    ) -> Self {
        assert_eq!(
            topo.instance_count(),
            modules.len(),
            "modules must be parallel to the topology's instances"
        );
        let n = topo.instance_count();
        let n_edges = topo.edge_count();
        let work = match sched {
            SchedKind::Sweep => WorkState::default(),
            // The compiled schedulers keep a FIFO too: islands iterate on
            // it, and the default phase's resume path reuses it.
            SchedKind::Dynamic | SchedKind::Compiled | SchedKind::CompiledParallel => WorkState {
                fifo: VecDeque::with_capacity(n),
                queued: vec![false; n],
                ranked: None,
            },
            SchedKind::Static => WorkState {
                ranked: Some(RankQueue::new(topo.ranks())),
                ..WorkState::default()
            },
        };
        let plan = match sched {
            SchedKind::Compiled | SchedKind::CompiledParallel => Some(topo.plan().clone()),
            _ => None,
        };
        // Handler specialization is a serial-compiled execution detail:
        // classify once at construction, against the same plan the
        // scheduler runs.
        let spec = match (&plan, sched) {
            (Some(p), SchedKind::Compiled) => SpecState::build(&topo, p, &modules),
            _ => None,
        };
        Simulator {
            store: SignalStore::new(n_edges),
            modules,
            stats: Stats::new(),
            now: 0,
            sched,
            work,
            metrics: EngineMetrics::default(),
            probe: None,
            wake_buf: Vec::new(),
            active: vec![false; n],
            transfer_counts: vec![0; n_edges],
            resil: None,
            ckpt: None,
            sup: None,
            plan,
            spec,
            spec_enabled: true,
            threads: 0,
            pool: None,
            par_bufs: Vec::new(),
            topo,
        }
    }

    /// Enable or disable handler specialization (default: enabled).
    /// Turning it off mid-run writes any live kernel state back into the
    /// modules first, so the switch is observationally invisible.
    pub fn set_specialization(&mut self, on: bool) {
        if !on {
            self.despecialize();
        }
        self.spec_enabled = on;
    }

    /// Which instances of the compiled plan run as type-specialized
    /// kernels, and why the rest stay dynamic. `None` for the
    /// non-compiled schedulers (specialization never applies to them).
    /// This re-renders the construction-time classification; the
    /// `enabled` flag additionally reflects [`Simulator::set_specialization`]
    /// and any probe/fault installation that suppressed the fast path.
    pub fn plan_summary(&self) -> Option<PlanSummary> {
        let plan = self.plan.as_ref()?;
        if self.sched != SchedKind::Compiled {
            return None;
        }
        let classification = kernel::classify(&self.topo, plan, &self.modules);
        let enabled = self.spec_enabled && self.probe.is_none() && self.resil.is_none();
        Some(classification.summary(&self.topo, enabled))
    }

    /// True when the next step will run (or keep running) the specialized
    /// reaction/commit path.
    fn spec_active(&self) -> bool {
        self.spec_enabled
            && self.sched == SchedKind::Compiled
            && self.probe.is_none()
            && self.resil.is_none()
            && self.spec.as_ref().is_some_and(|s| s.live)
    }

    /// Write live kernel state back into the modules and drop the
    /// kernels. Called whenever observation machinery (probes, faults,
    /// watchdogs) attaches, and by [`Simulator::set_specialization`]; the
    /// write-back is lossless by construction, so a failure here is a
    /// kernel bug, not a user error.
    fn despecialize(&mut self) {
        if let Some(spec) = self.spec.as_deref_mut() {
            spec.sync_back(&mut self.modules)
                .expect("kernel state write-back cannot fail for lowered templates");
        }
    }

    fn resil_mut(&mut self) -> &mut ResilState {
        let n = self.topo.instance_count();
        self.resil.get_or_insert_with(|| {
            Box::new(ResilState {
                plan: None,
                policy: FailurePolicy::default(),
                max_iters: None,
                quarantined: vec![false; n],
                active: ActiveFaults::default(),
                iters: 0,
                osc: BTreeMap::new(),
                pending_q: Vec::new(),
            })
        })
    }

    /// Install a fault plan (compiled to per-step schedules). Subsequent
    /// steps inject the plan's faults; combine with
    /// [`Simulator::set_failure_policy`] to survive the induced handler
    /// failures and with [`Simulator::set_watchdog`] to bound divergence.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.despecialize();
        let n = self.topo.instance_count();
        self.resil_mut().plan = Some(plan.compile(n));
    }

    /// What happens when a module handler panics or errors during a
    /// resilient run (default: [`FailurePolicy::Abort`]). Calling this
    /// (with either policy) opts the run into `catch_unwind` around
    /// handlers, so even `Abort` turns a raw panic into a structured
    /// [`SimError::Panic`].
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.despecialize();
        self.resil_mut().policy = policy;
    }

    /// Bound the reaction phase to `max_iters` `react` invocations per
    /// step. Enabling the watchdog also switches module writes to the
    /// oscillation-tolerant mode: a non-monotonic write re-resolves the
    /// wire and re-wakes its readers instead of erroring, so a cyclically
    /// inconsistent specification iterates until the budget runs out and
    /// then fails with [`SimError::Divergence`] naming the oscillating
    /// wires.
    pub fn set_watchdog(&mut self, max_iters: u64) {
        self.despecialize();
        self.resil_mut().max_iters = Some(max_iters.max(1));
    }

    fn ckpt_mut(&mut self) -> &mut CheckpointState {
        self.ckpt
            .get_or_insert_with(|| Box::new(CheckpointState::new()))
    }

    /// Take a checkpoint automatically every `every` steps during
    /// [`Simulator::run`] (0 disables). Checkpoints are kept in memory
    /// as the rollback target; pair with
    /// [`Simulator::set_checkpoint_dir`] to also persist each one.
    /// Checkpointing happens strictly at step boundaries, so enabling it
    /// never perturbs the reaction/commit hot loops.
    pub fn set_auto_checkpoint(&mut self, every: u64) {
        self.ckpt_mut().every = every;
    }

    /// Persist every auto checkpoint to `<dir>/step-<now>.ckpt`
    /// (written atomically: temp file + rename).
    pub fn set_checkpoint_dir(&mut self, dir: impl Into<std::path::PathBuf>) {
        self.ckpt_mut().dir = Some(dir.into());
    }

    /// Enable roll-back-and-retry recovery: when a step quarantines an
    /// instance (under [`FailurePolicy::Quarantine`]) or dies with
    /// [`SimError::Divergence`], `run` restores the last checkpoint,
    /// masks the offending instance/edge in the installed fault plan and
    /// resumes — emitting `rollback` and `restore` probe events. Each
    /// instance/edge is retried at most once: a failure that is not
    /// explained by the fault plan replays identically, so the second
    /// occurrence falls through to the plain quarantine/abort behaviour.
    pub fn set_rollback(&mut self, enabled: bool) {
        self.ckpt_mut().rollback = enabled;
    }

    /// The most recent checkpoint taken by the auto-checkpoint machinery
    /// or [`Simulator::checkpoint_now`].
    pub fn last_checkpoint(&self) -> Option<Arc<Snapshot>> {
        self.ckpt.as_ref().and_then(|c| c.last.clone())
    }

    /// How many times the recovery path rolled the run back.
    pub fn rollbacks(&self) -> u64 {
        self.ckpt.as_ref().map_or(0, |c| c.rollbacks)
    }

    fn sup_mut(&mut self) -> &mut SupervisorState {
        self.sup
            .get_or_insert_with(|| Box::new(SupervisorState::new()))
    }

    /// Retry attempts allowed per individual cause (instance/edge): 1 —
    /// the original retry-once behaviour — unless a retry policy raises
    /// it.
    fn per_cause_cap(&self) -> usize {
        self.sup
            .as_ref()
            .map_or(1, |s| s.retry.per_cause.max(1) as usize)
    }

    /// Install a cooperative [`RunBudget`]. Budgets are enforced at step
    /// boundaries by the governed run loop ([`Simulator::run`] routes
    /// through it once any governance is installed); an unset simulator
    /// pays a single `Option` check per *run call*, nothing per step.
    pub fn set_budget(&mut self, budget: RunBudget) {
        self.sup_mut().budget = budget;
    }

    /// Install a [`CancelToken`]. When tripped (from another thread or a
    /// signal handler), the governed loop exits at the next step
    /// boundary: in-flight level-parallel partitions drain at their
    /// completion barrier, a final checkpoint is taken, and the run
    /// returns [`RunOutcome::Cancelled`].
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.sup_mut().cancel = Some(token);
    }

    /// Install a [`RetryPolicy`], generalizing the rollback-retry-once
    /// behaviour into a bounded escalation ladder: retry from checkpoint
    /// (with backoff) → mask the offending fault/edge → leave the
    /// instance quarantined → degrade to partial results. Also arms
    /// rollback — retries restore the last checkpoint.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.sup_mut().retry = policy;
        self.ckpt_mut().rollback = true;
    }

    /// Install a memory gauge (typically wired to a counting global
    /// allocator) for [`RunBudget::max_memory_bytes`]. Polled once per
    /// step boundary during governed runs; never on the hot path.
    pub fn set_memory_gauge(&mut self, gauge: impl Fn() -> u64 + Send + Sync + 'static) {
        self.sup_mut().gauge = Some(Arc::new(gauge) as MemoryGauge);
    }

    /// The report of the most recent governed run, if any.
    pub fn last_run_report(&self) -> Option<&RunReport> {
        self.sup.as_ref().and_then(|s| s.last_report.as_ref())
    }

    /// True when any governance (budget, token, policy, gauge) is
    /// installed and `run` will route through the governed loop.
    pub fn is_governed(&self) -> bool {
        self.sup.is_some()
    }

    /// Run `cycles` steps under governance and return the structured
    /// [`RunReport`] — from **every** exit path: completion, budget
    /// exhaustion, cancellation, degradation and failure alike. Callable
    /// on an ungoverned simulator too (the report then just describes a
    /// plain run).
    pub fn run_governed(&mut self, cycles: u64) -> RunReport {
        self.run_governed_until(cycles, |_| false)
    }

    /// [`Simulator::run_governed`] with an early-exit predicate, checked
    /// after each completed step (the governed analogue of
    /// [`Simulator::run_until`]). Reaching the predicate counts as
    /// completion.
    pub fn run_governed_until(
        &mut self,
        max_cycles: u64,
        mut pred: impl FnMut(&Stats) -> bool,
    ) -> RunReport {
        let started = std::time::Instant::now();
        let start_now = self.now;
        // Counted locally rather than via `metrics.steps`: a rollback
        // restores the metrics from the snapshot, but replayed steps are
        // real work and must count against the step budget.
        let mut executed: u64 = 0;
        let target = self.now.saturating_add(max_cycles);
        {
            let s = self.sup_mut();
            s.retries.clear();
            s.total_retries = 0;
            s.mem_peak = 0;
        }
        let mut outcome = RunOutcome::Completed;
        let mut error: Option<SimError> = None;
        // A rollback needs a target even before the first periodic
        // checkpoint: seed one at the starting boundary.
        if self
            .ckpt
            .as_ref()
            .is_some_and(|c| c.rollback && c.last.is_none())
        {
            match self.snapshot() {
                Ok(s) => self.ckpt_mut().last = Some(Arc::new(s)),
                Err(e) => {
                    error = Some(e);
                    outcome = RunOutcome::Failed;
                }
            }
        }
        while error.is_none() && self.now < target {
            if let Some(stop) = self.governed_stop(started, executed) {
                outcome = stop;
                break;
            }
            let q_before = self.metrics.quarantines;
            match self.step() {
                Ok(()) => {
                    executed += 1;
                    if self.metrics.quarantines > q_before && self.retry_budget_left() {
                        match self.try_rollback_quarantine() {
                            Ok(true) => {
                                self.note_retry(RetryCause::Quarantine);
                                continue;
                            }
                            Ok(false) => {} // quarantine stands (ladder step 3)
                            Err(e) => {
                                error = Some(e);
                                break;
                            }
                        }
                    }
                    if let Err(e) = self.maybe_auto_checkpoint() {
                        error = Some(e);
                        break;
                    }
                    if pred(&self.stats) {
                        break;
                    }
                }
                Err(e) => {
                    let retried = if self.retry_budget_left() {
                        self.try_rollback_divergence(&e)
                    } else {
                        Ok(false)
                    };
                    match retried {
                        Ok(true) => self.note_retry(RetryCause::Divergence),
                        Ok(false) => {
                            error = Some(e);
                            break;
                        }
                        Err(e2) => {
                            error = Some(e2);
                            break;
                        }
                    }
                }
            }
        }
        if error.is_some() {
            outcome = RunOutcome::Failed;
        } else if matches!(outcome, RunOutcome::Completed)
            && !self.quarantined_instances().is_empty()
        {
            // Reached the target, but only by isolating instances: the
            // results are partial (ladder step 4).
            outcome = RunOutcome::Degraded;
        }
        // A budget stop on a checkpointing simulator preserves progress
        // too (cancellation already checkpointed inside governed_stop).
        if matches!(outcome, RunOutcome::BudgetExhausted(_)) && self.ckpt.is_some() {
            let _ = self.checkpoint_now();
        }
        let report = self.build_report(outcome, max_cycles, start_now, executed, started, error);
        self.sup_mut().last_report = Some(report.clone());
        report
    }

    /// The step-boundary governance check: cancellation first (it also
    /// takes the final checkpoint), then each budget axis in a fixed
    /// order. Returns the outcome to stop with, if any.
    fn governed_stop(&mut self, started: std::time::Instant, executed: u64) -> Option<RunOutcome> {
        let s = self.sup.as_deref_mut()?;
        if s.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
            let now = self.now;
            if let Some(p) = self.probe.as_deref_mut() {
                p.run_cancelled(now);
            }
            // Preserve the work done so far: the in-memory snapshot is
            // always taken; it also lands on disk when a checkpoint
            // directory is configured. A snapshot failure must not mask
            // the cancellation.
            let _ = self.checkpoint_now();
            return Some(RunOutcome::Cancelled);
        }
        if let Some(max) = s.budget.max_steps {
            if executed >= max {
                return Some(RunOutcome::BudgetExhausted(BudgetKind::Steps));
            }
        }
        if let Some(deadline) = s.budget.deadline {
            if started.elapsed() >= deadline {
                return Some(RunOutcome::BudgetExhausted(BudgetKind::Deadline));
            }
        }
        if let Some(gauge) = &s.gauge {
            let used = gauge();
            s.mem_peak = s.mem_peak.max(used);
            if s.budget.max_memory_bytes.is_some_and(|ceil| used > ceil) {
                return Some(RunOutcome::BudgetExhausted(BudgetKind::Memory));
            }
        }
        if let Some(max_q) = s.budget.max_quarantined {
            if self.metrics.quarantines > max_q {
                return Some(RunOutcome::BudgetExhausted(BudgetKind::Quarantine));
            }
        }
        None
    }

    /// True while the retry policy's total budget has attempts left.
    fn retry_budget_left(&self) -> bool {
        self.sup
            .as_ref()
            .is_none_or(|s| s.total_retries < s.retry.max_retries)
    }

    /// Account a performed retry and apply the policy's backoff (a pure
    /// host-side delay: the simulated clock and the probe stream are
    /// unaffected, so retried runs stay byte-identical).
    fn note_retry(&mut self, cause: RetryCause) {
        let s = self.sup_mut();
        s.total_retries += 1;
        *s.retries.entry(cause.label()).or_insert(0) += 1;
        let delay = s.retry.backoff_for(s.total_retries);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }

    fn build_report(
        &mut self,
        outcome: RunOutcome,
        steps_requested: u64,
        start_now: u64,
        executed: u64,
        started: std::time::Instant,
        error: Option<SimError>,
    ) -> RunReport {
        let quarantined: Vec<String> = self
            .quarantined_instances()
            .into_iter()
            .map(|i| self.topo.name(i).to_string())
            .collect();
        let last_checkpoint = self.ckpt.as_ref().and_then(|c| {
            let dir = c.dir.as_ref()?;
            let snap = c.last.as_ref()?;
            let path = dir.join(format!("step-{:08}.ckpt", snap.now()));
            path.exists().then_some(path)
        });
        let s = self.sup.as_deref();
        RunReport {
            outcome,
            steps_requested,
            steps_completed: self.now.saturating_sub(start_now),
            steps_executed: executed,
            elapsed: started.elapsed(),
            retries: s.map(|s| s.retries.clone()).unwrap_or_default(),
            rollbacks: self.rollbacks(),
            memory_peak: s.and_then(|s| s.gauge.is_some().then_some(s.mem_peak)),
            quarantined,
            last_checkpoint,
            error,
        }
    }

    /// Capture the full durable simulator state at the current step
    /// boundary: step counter, engine metrics, per-edge transfer counts,
    /// statistics, the quarantine set and one
    /// [`Module::state_save`] blob per instance. Signal-store contents
    /// are *not* captured — every wire re-resolves from `Unknown` each
    /// step, so at a boundary the store is semantically empty.
    pub fn snapshot(&self) -> Result<Snapshot, SimError> {
        // While kernels are live they — not the modules — hold the real
        // state of specialized instances; their blobs are byte-identical
        // to what `state_save` would produce after a write-back.
        let live_kernels = self
            .spec
            .as_deref()
            .filter(|s| s.live)
            .map(|s| s.kernels.as_slice());
        let mut modules = Vec::with_capacity(self.modules.len());
        for (i, m) in self.modules.iter().enumerate() {
            let kernel = live_kernels.and_then(|ks| ks[i].as_ref());
            let blob = match kernel {
                Some(k) => k.state_blob(),
                None => m.state_save(),
            }
            .map_err(|e| {
                SimError::model(format!(
                    "state_save of instance {:?}: {e}",
                    self.topo.name(InstanceId(i as u32))
                ))
            })?;
            modules.push(blob);
        }
        let quarantined: Vec<u32> = self
            .quarantined_instances()
            .into_iter()
            .map(|i| i.0)
            .collect();
        Ok(Snapshot {
            now: self.now,
            n_instances: self.topo.instance_count() as u32,
            n_edges: self.topo.edge_count() as u32,
            metrics: self.metrics,
            transfer_counts: self.transfer_counts.clone(),
            quarantined,
            stats: self.stats.dump(),
            modules,
        })
    }

    /// Replace the simulator's durable state with `snap`'s. The snapshot
    /// must come from an identically built netlist (instance/edge census
    /// is validated; module state blobs are validated by each module).
    /// Fault plans, failure policies and watchdogs are *not* part of a
    /// snapshot — plan activation is a pure function of the step number,
    /// so reinstalling the same plan reproduces the same injections;
    /// re-arm them after restoring into a fresh simulator.
    ///
    /// On success the next [`Simulator::step`] executes step
    /// `snap.now()` and the continuation is bit-exact: canonical probe
    /// streams match the uninterrupted run under every scheduler. On
    /// error the simulator may be partially restored and must be
    /// discarded.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SimError> {
        let n = self.topo.instance_count();
        let n_edges = self.topo.edge_count();
        if snap.n_instances as usize != n || snap.n_edges as usize != n_edges {
            return Err(SimError::checkpoint(CheckpointError::Malformed(format!(
                "snapshot census ({} instances, {} edges) does not fit this netlist \
                 ({n} instances, {n_edges} edges)",
                snap.n_instances, snap.n_edges
            ))));
        }
        // Restored state lands in the modules; drop any live kernels so
        // the next specialized step re-materializes from the modules (and
        // re-binds statistics slots against the replaced `Stats` arena).
        if let Some(spec) = self.spec.as_deref_mut() {
            spec.kernels.clear();
            spec.live = false;
        }
        for (i, m) in self.modules.iter_mut().enumerate() {
            m.state_restore(&snap.modules[i]).map_err(|e| {
                SimError::checkpoint(CheckpointError::Malformed(format!(
                    "state_restore of instance {:?}: {e}",
                    self.topo.name(InstanceId(i as u32))
                )))
            })?;
        }
        self.now = snap.now;
        self.metrics = snap.metrics;
        self.transfer_counts.clone_from(&snap.transfer_counts);
        self.stats = crate::snapshot::stats_from_snapshot(snap);
        // Fresh store: at a step boundary every slot is epoch-stale
        // (semantically Unknown), which is exactly what a new store is.
        self.store = SignalStore::new(n_edges);
        self.active.iter_mut().for_each(|a| *a = false);
        if let Some(rs) = self.resil.as_deref_mut() {
            rs.quarantined.iter_mut().for_each(|q| *q = false);
            rs.iters = 0;
            rs.osc.clear();
            rs.pending_q.clear();
            rs.active.clear();
        }
        if !snap.quarantined.is_empty() {
            let rs = self.resil_mut();
            for &q in &snap.quarantined {
                rs.quarantined[q as usize] = true;
            }
        }
        if let Some(p) = self.probe.as_deref_mut() {
            p.restored(self.now);
        }
        Ok(())
    }

    /// Take a checkpoint right now: remember it in memory as the
    /// rollback target, write it to the checkpoint directory when one is
    /// set, and emit the `checkpoint` probe event. The auto-checkpoint
    /// path calls this every N steps; hosts can also call it directly at
    /// any step boundary.
    pub fn checkpoint_now(&mut self) -> Result<(), SimError> {
        let snap = Arc::new(self.snapshot()?);
        let now = self.now;
        let c = self.ckpt_mut();
        c.last = Some(Arc::clone(&snap));
        if let Some(dir) = c.dir.clone() {
            std::fs::create_dir_all(&dir).map_err(|e| {
                SimError::checkpoint(CheckpointError::Io {
                    path: dir.clone(),
                    msg: e.to_string(),
                })
            })?;
            snap.write_file(&dir.join(format!("step-{now:08}.ckpt")))?;
        }
        if let Some(p) = self.probe.as_deref_mut() {
            p.checkpointed(now);
        }
        Ok(())
    }

    fn maybe_auto_checkpoint(&mut self) -> Result<(), SimError> {
        let every = self.ckpt.as_ref().map_or(0, |c| c.every);
        if every == 0 || !self.now.is_multiple_of(every) {
            return Ok(());
        }
        self.checkpoint_now()
    }

    /// Recovery for a step that quarantined at least one instance: if
    /// rollback is armed and any of the new quarantines has not been
    /// retried yet, mask those instances' fault-plan entries, rewind to
    /// the last checkpoint and report `true` (the caller re-runs the
    /// steps). Otherwise leave the quarantine standing.
    fn try_rollback_quarantine(&mut self) -> Result<bool, SimError> {
        let Some(c) = self.ckpt.as_ref() else {
            return Ok(false);
        };
        if !c.rollback {
            return Ok(false);
        }
        let Some(snap) = c.last.clone() else {
            return Ok(false);
        };
        // Attempts per individual instance: 1 unless a retry policy
        // raises it (the supervisor's per-cause cap).
        let cap = self.per_cause_cap();
        let fresh: Vec<u32> = self
            .quarantined_instances()
            .into_iter()
            .map(|i| i.0)
            .filter(|i| !snap.quarantined.contains(i))
            .filter(|i| c.attempted_insts.iter().filter(|&&a| a == *i).count() < cap)
            .collect();
        if fresh.is_empty() {
            return Ok(false);
        }
        if let Some(rs) = self.resil.as_deref_mut() {
            if let Some(plan) = rs.plan.as_mut() {
                for &i in &fresh {
                    plan.mask_instance(i);
                }
            }
        }
        let names: Vec<&str> = fresh
            .iter()
            .map(|&i| self.topo.name(InstanceId(i)))
            .collect();
        let reason = format!("quarantine of {}", names.join(", "));
        let now = self.now;
        let c = self.ckpt_mut();
        c.attempted_insts.extend(fresh.iter().copied());
        c.rollbacks += 1;
        if let Some(p) = self.probe.as_deref_mut() {
            p.rolled_back(now, snap.now, &reason);
        }
        self.restore(&snap)?;
        Ok(true)
    }

    /// Recovery for a step that died with [`SimError::Divergence`]: if
    /// rollback is armed and masking the oscillating edges actually
    /// removed fault-plan entries (an organic oscillation replays
    /// identically, so retrying it would loop), rewind and report
    /// `true`.
    fn try_rollback_divergence(&mut self, e: &SimError) -> Result<bool, SimError> {
        let Some(info) = e.as_divergence() else {
            return Ok(false);
        };
        let Some(c) = self.ckpt.as_ref() else {
            return Ok(false);
        };
        if !c.rollback {
            return Ok(false);
        }
        let Some(snap) = c.last.clone() else {
            return Ok(false);
        };
        let cap = self.per_cause_cap();
        let fresh: Vec<u32> = info
            .oscillating
            .iter()
            .map(|w| w.edge)
            .filter(|e| c.attempted_edges.iter().filter(|&&a| a == *e).count() < cap)
            .collect();
        if fresh.is_empty() {
            return Ok(false);
        }
        let mut masked = 0;
        if let Some(rs) = self.resil.as_deref_mut() {
            if let Some(plan) = rs.plan.as_mut() {
                for &e in &fresh {
                    masked += plan.mask_edge(e);
                }
            }
        }
        let c = self.ckpt_mut();
        c.attempted_edges.extend(fresh.iter().copied());
        if masked == 0 {
            return Ok(false);
        }
        c.rollbacks += 1;
        let now = self.now;
        let reason = format!(
            "divergence on edge{} {}",
            if fresh.len() == 1 { "" } else { "s" },
            fresh
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        if let Some(p) = self.probe.as_deref_mut() {
            p.rolled_back(now, snap.now, &reason);
        }
        self.restore(&snap)?;
        Ok(true)
    }

    /// The recoverable run loop: auto-checkpoints at period boundaries
    /// and rewinds on quarantine/divergence when rollback is armed.
    fn run_recoverable(&mut self, cycles: u64) -> Result<(), SimError> {
        let target = self.now.saturating_add(cycles);
        // A rollback needs a target even before the first periodic
        // checkpoint: seed one at the starting boundary.
        if self
            .ckpt
            .as_ref()
            .is_some_and(|c| c.rollback && c.last.is_none())
        {
            let snap = Arc::new(self.snapshot()?);
            self.ckpt_mut().last = Some(snap);
        }
        while self.now < target {
            let q_before = self.metrics.quarantines;
            match self.step() {
                Ok(()) => {
                    if self.metrics.quarantines > q_before && self.try_rollback_quarantine()? {
                        continue;
                    }
                    self.maybe_auto_checkpoint()?;
                }
                Err(e) => {
                    if !self.try_rollback_divergence(&e)? {
                        return Err(e);
                    }
                }
            }
        }
        Ok(())
    }

    /// True when `inst` has been quarantined by
    /// [`FailurePolicy::Quarantine`].
    pub fn is_quarantined(&self, inst: InstanceId) -> bool {
        self.resil
            .as_ref()
            .is_some_and(|r| r.quarantined.get(inst.0 as usize).copied().unwrap_or(false))
    }

    /// The instances quarantined so far, in id order.
    pub fn quarantined_instances(&self) -> Vec<InstanceId> {
        match &self.resil {
            None => Vec::new(),
            Some(r) => r
                .quarantined
                .iter()
                .enumerate()
                .filter(|(_, &q)| q)
                .map(|(i, _)| InstanceId(i as u32))
                .collect(),
        }
    }

    /// The immutable structure this simulator runs over.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// Attach a transfer tracer (compat path: the tracer is lifted into a
    /// [`Probe`] observing only `transfer` events).
    pub fn set_tracer(&mut self, t: Box<dyn Tracer>) {
        self.set_probe(Box::new(TracerProbe::new(t)));
    }

    /// Attach a probe observing the full kernel event stream. The probe's
    /// [`Probe::attach`] hook runs immediately (VCD sinks emit their
    /// header there); any previously attached probe is replaced.
    pub fn set_probe(&mut self, mut p: Box<dyn Probe>) {
        // Probes observe per-instance react/commit events the specialized
        // path does not emit: fall back to the dynamic handlers.
        self.despecialize();
        p.attach(&self.topo);
        self.probe = Some(p);
    }

    /// Detach and return the current probe, if any (sinks that buffer —
    /// e.g. the VCD writer — flush on drop).
    pub fn take_probe(&mut self) -> Option<Box<dyn Probe>> {
        self.probe.take()
    }

    /// Current time-step number (cycles completed).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The statistics collected so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Engine invocation counters.
    pub fn metrics(&self) -> EngineMetrics {
        self.metrics
    }

    /// Which scheduler this simulator runs.
    pub fn sched(&self) -> SchedKind {
        self.sched
    }

    /// Set the lane count for [`SchedKind::CompiledParallel`]: total
    /// parallelism *including* the calling thread. `0` (the default)
    /// auto-detects from `std::thread::available_parallelism`. A no-op
    /// for the serial schedulers; any existing worker pool is dropped and
    /// respawned lazily at the next step.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.threads = threads;
        self.pool = None;
    }

    fn effective_threads(&self) -> usize {
        if self.threads != 0 {
            self.threads
        } else {
            // Cached: `available_parallelism` re-reads cgroup limits on
            // every call, far too slow for a per-step check.
            static AUTO: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
            *AUTO.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        }
    }

    /// The compiled invocation plan, when running a compiled scheduler.
    pub fn compiled_plan(&self) -> Option<&Arc<CompiledPlan>> {
        self.plan.as_ref()
    }

    /// Instance names in id order (for stats reports).
    pub fn instance_names(&self) -> impl Iterator<Item = &str> {
        self.topo.instance_names()
    }

    /// Look up an instance id by name.
    pub fn instance_by_name(&self, name: &str) -> Option<InstanceId> {
        self.topo.instance_by_name(name)
    }

    /// Build a serializable statistics report.
    pub fn report(&self) -> StatsReport {
        let names: Vec<&str> = self.topo.instance_names().collect();
        self.stats.report(&names)
    }

    /// How many instances of each template the netlist contains — the
    /// ground truth for the reuse census (experiment E6).
    pub fn template_census(&self) -> std::collections::BTreeMap<String, usize> {
        self.topo.template_census()
    }

    /// Number of connections in the netlist.
    pub fn edge_count(&self) -> usize {
        self.topo.edge_count()
    }

    /// Cumulative completed-transfer count per edge (indexed by
    /// [`EdgeId`]). A scheduler-independent observable: all schedulers
    /// reach the same fixed point, hence the same transfers.
    pub fn transfer_counts(&self) -> &[u64] {
        &self.transfer_counts
    }

    /// Run `cycles` time-steps. When governance (budget / cancel token /
    /// retry policy) is installed, the loop routes through
    /// [`Simulator::run_governed`] — budget and cancellation stops then
    /// return `Ok` with the details in [`Simulator::last_run_report`];
    /// only [`RunOutcome::Failed`] surfaces as `Err`. When checkpointing
    /// or rollback is configured, the loop auto-checkpoints at period
    /// boundaries and rewinds on recoverable quarantine/divergence;
    /// otherwise it is the plain step loop with no per-step overhead.
    pub fn run(&mut self, cycles: u64) -> Result<(), SimError> {
        if self.sup.is_some() {
            let report = self.run_governed(cycles);
            return match report.error {
                Some(e) => Err(e),
                None => Ok(()),
            };
        }
        if self.ckpt.is_some() {
            return self.run_recoverable(cycles);
        }
        for _ in 0..cycles {
            self.step()?;
        }
        Ok(())
    }

    /// Run until `pred` returns true (checked after each step) or until
    /// `max_cycles` elapse. Returns the number of steps executed. Like
    /// [`Simulator::run`], routes through the governed loop when
    /// governance is installed.
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut pred: impl FnMut(&Stats) -> bool,
    ) -> Result<u64, SimError> {
        if self.sup.is_some() {
            let report = self.run_governed_until(max_cycles, pred);
            return match report.error {
                Some(e) => Err(e),
                None => Ok(report.steps_completed),
            };
        }
        for c in 0..max_cycles {
            self.step()?;
            if pred(&self.stats) {
                return Ok(c + 1);
            }
        }
        Ok(max_cycles)
    }

    /// Execute one complete time-step.
    pub fn step(&mut self) -> Result<(), SimError> {
        if let Some(p) = self.probe.as_deref_mut() {
            p.step_begin(self.now);
        }
        self.store.begin_step(); // O(1): epoch bump, no per-edge sweep
        let resilient = self.resil.is_some();
        if resilient {
            self.begin_resilient_step();
        }
        self.reaction_phase()?;
        self.default_phase()?;
        if resilient {
            self.commit_phase::<true>()?;
            self.flush_quarantine_events();
        } else if self.spec_active() {
            self.commit_phase_spec()?;
        } else {
            self.commit_phase::<false>()?;
        }
        if let Some(p) = self.probe.as_deref_mut() {
            p.step_end(self.now);
        }
        self.metrics.steps += 1;
        self.now += 1;
        Ok(())
    }

    /// Reset the watchdog clock, build this step's active-fault table and
    /// report the injections to the probe — in sorted `(edge, wire)` /
    /// instance order, so the event stream is scheduler-independent.
    fn begin_resilient_step(&mut self) {
        let now = self.now;
        let Simulator {
            probe,
            resil,
            metrics,
            ..
        } = self;
        let rs = resil.as_deref_mut().expect("resilient step without state");
        rs.iters = 0;
        rs.osc.clear();
        let ResilState { plan, active, .. } = &mut *rs;
        match plan {
            Some(plan) => plan.activate(now, active),
            None => active.clear(),
        }
        if active.is_empty() {
            return;
        }
        metrics.faults_injected +=
            (active.signals.len() + active.panics.len() + active.latency.len()) as u64;
        if let Some(p) = probe.as_deref_mut() {
            for &(edge, widx, kind) in &active.signals {
                p.fault_injected(now, EdgeId(edge), wire_from_idx(widx), kind);
            }
            for &i in &active.panics {
                p.instance_fault(now, InstanceId(i), "panic");
            }
            for &(i, _) in &active.latency {
                p.instance_fault(now, InstanceId(i), "latency");
            }
        }
    }

    /// Report this step's quarantines in instance-id order (they are
    /// discovered in scheduler-dependent order during the phases).
    fn flush_quarantine_events(&mut self) {
        let now = self.now;
        let Simulator { probe, resil, .. } = self;
        let rs = resil.as_deref_mut().expect("resilient step without state");
        if rs.pending_q.is_empty() {
            return;
        }
        rs.pending_q.sort_by_key(|q| q.0);
        if let Some(p) = probe.as_deref_mut() {
            for (i, reason) in rs.pending_q.drain(..) {
                p.quarantined(now, InstanceId(i), &reason);
            }
        } else {
            rs.pending_q.clear();
        }
    }

    /// Run the reaction phase from a full seed (every instance queued).
    /// The compiled schedulers take the plan path instead: no seeding, no
    /// worklist for the acyclic part of the netlist.
    fn reaction_phase(&mut self) -> Result<(), SimError> {
        if matches!(
            self.sched,
            SchedKind::Compiled | SchedKind::CompiledParallel
        ) {
            return self.reaction_compiled();
        }
        let n = self.topo.instance_count();
        let mut work = std::mem::take(&mut self.work);
        match self.sched {
            SchedKind::Sweep => {}
            SchedKind::Dynamic => {
                debug_assert!(work.fifo.is_empty());
                work.queued[..n].fill(true);
                work.fifo.extend(0..n as u32);
            }
            SchedKind::Static => {
                let q = work.ranked.as_mut().expect("static rank queue");
                q.reset();
                for i in 0..n as u32 {
                    q.push(i);
                }
            }
            SchedKind::Compiled | SchedKind::CompiledParallel => unreachable!("dispatched above"),
        }
        let r = self.drain(&mut work);
        self.work = work;
        r
    }

    /// Resume reactions after a default resolution woke `seeds`.
    fn resume(&mut self, seeds: &[u32]) -> Result<(), SimError> {
        let mut work = std::mem::take(&mut self.work);
        match self.sched {
            SchedKind::Sweep => {}
            SchedKind::Dynamic | SchedKind::Compiled | SchedKind::CompiledParallel => {
                debug_assert!(work.fifo.is_empty());
                for &s in seeds {
                    if !work.queued[s as usize] {
                        work.queued[s as usize] = true;
                        work.fifo.push_back(s);
                    }
                }
            }
            SchedKind::Static => {
                let q = work.ranked.as_mut().expect("static rank queue");
                q.reset();
                for &s in seeds {
                    q.push(s);
                }
            }
        }
        let r = self.drain(&mut work);
        self.work = work;
        r
    }

    /// Drain the worklist to quiescence, waking CSR readers of each newly
    /// resolved wire. All three schedulers flow through here. The probe
    /// and resilience checks are hoisted out of the hot loop: the loop
    /// body is monomorphized on both, so the plain (probe-off, fault-off)
    /// path contains no per-invocation probe or fault code at all.
    fn drain(&mut self, work: &mut WorkState) -> Result<(), SimError> {
        let r = match (self.probe.is_some(), self.resil.is_some()) {
            (false, false) => self.drain_impl::<false, false>(work),
            (true, false) => self.drain_impl::<true, false>(work),
            (false, true) => self.drain_impl::<false, true>(work),
            (true, true) => self.drain_impl::<true, true>(work),
        };
        if r.is_err() {
            // Leave the worklist reusable after a structured failure
            // (divergence / abort) so a later step cannot observe stale
            // queue entries.
            work.fifo.clear();
            work.queued.fill(false);
            if let Some(q) = work.ranked.as_mut() {
                q.reset();
            }
        }
        r
    }

    fn drain_impl<const PROBED: bool, const RESIL: bool>(
        &mut self,
        work: &mut WorkState,
    ) -> Result<(), SimError> {
        let Simulator {
            topo,
            modules,
            store,
            stats,
            now,
            sched,
            metrics,
            probe,
            wake_buf,
            resil,
            ..
        } = self;
        let topo: &Topology = topo;
        let mut probe: Option<&mut (dyn Probe + 'static)> =
            if PROBED { probe.as_deref_mut() } else { None };
        let probe = &mut probe;
        let mut newly = std::mem::take(wake_buf);
        let result = (|| match sched {
            SchedKind::Sweep => loop {
                let mut progressed = false;
                for i in 0..topo.instance_count() {
                    newly.clear();
                    react_one::<PROBED, RESIL>(
                        topo, modules, store, stats, metrics, *now, i, &mut newly, probe, resil,
                    )?;
                    if !newly.is_empty() {
                        progressed = true;
                    }
                }
                if !progressed {
                    return Ok(());
                }
            },
            SchedKind::Dynamic | SchedKind::Compiled | SchedKind::CompiledParallel => {
                while let Some(i) = work.fifo.pop_front() {
                    work.queued[i as usize] = false;
                    newly.clear();
                    react_one::<PROBED, RESIL>(
                        topo, modules, store, stats, metrics, *now, i as usize, &mut newly, probe,
                        resil,
                    )?;
                    for (e, wire) in newly.drain(..) {
                        for &t in topo.readers(wire, e) {
                            if !work.queued[t as usize] {
                                work.queued[t as usize] = true;
                                work.fifo.push_back(t);
                            }
                        }
                    }
                }
                Ok(())
            }
            SchedKind::Static => {
                let q = work.ranked.as_mut().expect("static rank queue");
                while let Some(i) = q.pop() {
                    newly.clear();
                    react_one::<PROBED, RESIL>(
                        topo, modules, store, stats, metrics, *now, i as usize, &mut newly, probe,
                        resil,
                    )?;
                    for (e, wire) in newly.drain(..) {
                        for &t in topo.readers(wire, e) {
                            q.push(t);
                        }
                    }
                }
                Ok(())
            }
        })();
        self.wake_buf = newly;
        result
    }

    /// Reaction phase for the compiled schedulers: execute the plan
    /// instead of seeding and draining a worklist.
    fn reaction_compiled(&mut self) -> Result<(), SimError> {
        // The parallel burst excludes probes and resilience: a probe
        // observes resolve order (inherently serial), and fault/watchdog
        // machinery mutates shared state per react. Both fall back to the
        // serial compiled path, which handles them monomorphized.
        if self.sched == SchedKind::CompiledParallel
            && self.probe.is_none()
            && self.resil.is_none()
            && self.effective_threads() > 1
        {
            return self.reaction_compiled_parallel();
        }
        // Serial compiled path with specialization: lazily lower module
        // state into kernels on the first unobserved step, then run the
        // two-tier plan. A materialization failure permanently falls back
        // to the dynamic path — never a wrong answer.
        if self.sched == SchedKind::Compiled
            && self.spec_enabled
            && self.probe.is_none()
            && self.resil.is_none()
            && self.spec.is_some()
        {
            if !self.spec.as_deref().is_some_and(|s| s.live) {
                let mut spec = self.spec.take().expect("checked above");
                match spec.materialize(&self.topo, &self.modules) {
                    Ok(()) => self.spec = Some(spec),
                    Err(_) => self.spec = None,
                }
            }
            if self.spec.as_deref().is_some_and(|s| s.live) {
                return self.reaction_compiled_specialized();
            }
        }
        let mut work = std::mem::take(&mut self.work);
        let r = match (self.probe.is_some(), self.resil.is_some()) {
            (false, false) => self.compiled_serial::<false, false>(&mut work),
            (true, false) => self.compiled_serial::<true, false>(&mut work),
            (false, true) => self.compiled_serial::<false, true>(&mut work),
            (true, true) => self.compiled_serial::<true, true>(&mut work),
        };
        if r.is_err() {
            work.fifo.clear();
            work.queued.fill(false);
        }
        self.work = work;
        r
    }

    /// One serial pass over the plan: straight nodes react exactly once
    /// (their producers all sit earlier in the plan, so their inputs are
    /// final — monotonicity plus the unique fixed point make a single
    /// invocation sufficient); islands run a local FIFO fixed point.
    fn compiled_serial<const PROBED: bool, const RESIL: bool>(
        &mut self,
        work: &mut WorkState,
    ) -> Result<(), SimError> {
        let plan = self
            .plan
            .clone()
            .expect("compiled scheduler without a plan");
        let Simulator {
            topo,
            modules,
            store,
            stats,
            now,
            metrics,
            probe,
            wake_buf,
            resil,
            ..
        } = self;
        let topo: &Topology = topo;
        let mut probe: Option<&mut (dyn Probe + 'static)> =
            if PROBED { probe.as_deref_mut() } else { None };
        let probe = &mut probe;
        let mut newly = std::mem::take(wake_buf);
        if !PROBED && !RESIL {
            // Every straight node reacts exactly once per step; count the
            // whole batch up front instead of once per handler call.
            metrics.reacts += plan.straight_count() as u64;
            if plan.is_fully_acyclic() {
                // Fully acyclic netlist: the plan is a bare instance-id
                // sequence — no enum dispatch, no island machinery.
                let mut r = Ok(());
                for &i in plan.straight_ids() {
                    r = react_straight(topo, modules, store, stats, *now, i as usize);
                    if r.is_err() {
                        break;
                    }
                }
                self.wake_buf = newly;
                return r;
            }
        }
        let result = (|| {
            for node in plan.nodes() {
                match node {
                    &PlanNode::Straight(i) => {
                        // Wakes are dropped: every reader of a straight
                        // node's wires is a strictly later plan node and
                        // runs regardless (ack wakes would only target a
                        // declared reactive ack reader, which the compiler
                        // put in an island with this instance instead).
                        if !PROBED && !RESIL {
                            react_straight(topo, modules, store, stats, *now, i as usize)?;
                        } else {
                            newly.clear();
                            react_one::<PROBED, RESIL>(
                                topo, modules, store, stats, metrics, *now, i as usize, &mut newly,
                                probe, resil,
                            )?;
                        }
                    }
                    PlanNode::Island { island, members } => {
                        drain_island::<PROBED, RESIL>(
                            topo, modules, store, stats, metrics, *now, &plan, *island, members,
                            work, &mut newly, probe, resil,
                        )?;
                    }
                }
            }
            Ok(())
        })();
        self.wake_buf = newly;
        result
    }

    /// Specialized serial compiled reaction: eligible instances run as
    /// monomorphized kernels over unboxed lanes, the rest through the
    /// regular dynamic `react` machinery, interleaved in plan order.
    fn reaction_compiled_specialized(&mut self) -> Result<(), SimError> {
        let plan = self
            .plan
            .clone()
            .expect("compiled scheduler without a plan");
        let mut spec = self
            .spec
            .take()
            .expect("specialized reaction without kernel state");
        let mut work = std::mem::take(&mut self.work);
        let r = self.compiled_serial_spec(&plan, &mut spec, &mut work);
        if r.is_err() {
            work.fifo.clear();
            work.queued.fill(false);
        }
        self.work = work;
        self.spec = Some(spec);
        r
    }

    /// The two-tier plan walk: straight nodes dispatch to a kernel when
    /// one exists (no vtable, no `Value` boxing, no store round-trip),
    /// otherwise to `react_straight`; islands run entirely specialized or
    /// entirely dynamic (the classifier enforces all-or-none membership).
    fn compiled_serial_spec(
        &mut self,
        plan: &CompiledPlan,
        spec: &mut SpecState,
        work: &mut WorkState,
    ) -> Result<(), SimError> {
        let Simulator {
            topo,
            modules,
            store,
            stats,
            now,
            metrics,
            wake_buf,
            probe,
            resil,
            ..
        } = self;
        let topo: &Topology = topo;
        let SpecState {
            plan: splan,
            kernels,
            lanes,
            ..
        } = spec;
        for l in lanes.iter_mut() {
            l.reset();
        }
        // Fast lanes bypass the store entirely; credit their wires
        // wholesale so the store's full-resolution accounting (the default
        // phase's early-out) stays exact.
        store.credit_fast_resolved(3 * lanes.len() as u64);
        metrics.reacts += plan.straight_count() as u64;
        debug_assert!(probe.is_none() && resil.is_none());
        let mut dyn_probe: Option<&mut (dyn Probe + 'static)> = None;
        let mut newly = std::mem::take(wake_buf);
        let result = (|| {
            for node in plan.nodes() {
                match node {
                    &PlanNode::Straight(i) => {
                        let i = i as usize;
                        match kernels[i].as_ref() {
                            Some(k) => {
                                let mut io = kernel::Io {
                                    lanes: lanes.as_mut_slice(),
                                    store,
                                    newly: None,
                                    now: *now,
                                };
                                k.react(&mut io)?;
                            }
                            None => react_straight(topo, modules, store, stats, *now, i)?,
                        }
                    }
                    PlanNode::Island { island, members } => {
                        if splan.spec_islands[*island as usize] {
                            drain_island_spec(
                                topo,
                                kernels,
                                lanes.as_mut_slice(),
                                store,
                                metrics,
                                *now,
                                plan,
                                *island,
                                members,
                                work,
                                &mut newly,
                            )?;
                        } else {
                            drain_island::<false, false>(
                                topo,
                                modules,
                                store,
                                stats,
                                metrics,
                                *now,
                                plan,
                                *island,
                                members,
                                work,
                                &mut newly,
                                &mut dyn_probe,
                                resil,
                            )?;
                        }
                    }
                }
            }
            Ok(())
        })();
        self.wake_buf = newly;
        result
    }

    /// Parallel compiled reaction: independent same-level plan segments
    /// burst across the worker pool against a read-only store; each
    /// partition's writes are buffered and merged serially in plan order
    /// at the level barrier, so the store sees the exact mutation
    /// sequence of the serial compiled scheduler.
    fn reaction_compiled_parallel(&mut self) -> Result<(), SimError> {
        let plan = self
            .plan
            .clone()
            .expect("compiled scheduler without a plan");
        let threads = self.effective_threads();
        if self.pool.as_ref().is_none_or(|p| p.capacity() != threads) {
            self.pool = Some(WorkerPool::new(threads - 1));
        }
        let mut pool = self.pool.take().expect("pool ensured above");
        if self.par_bufs.len() < threads {
            self.par_bufs.resize_with(threads, ReactBuffer::default);
        }
        let mut bufs = std::mem::take(&mut self.par_bufs);
        let mut work = std::mem::take(&mut self.work);
        let r = self.par_levels(&plan, &mut pool, &mut work, &mut bufs[..threads]);
        if r.is_err() {
            work.fifo.clear();
            work.queued.fill(false);
        }
        self.work = work;
        self.par_bufs = bufs;
        self.pool = Some(pool);
        r
    }

    /// Walk the plan level by level: wide straight segments burst across
    /// the pool, narrow ones and islands run inline (islands iterate and
    /// are executed serially at their plan position — they are rare and
    /// small in well-formed specs).
    fn par_levels(
        &mut self,
        plan: &CompiledPlan,
        pool: &mut WorkerPool,
        work: &mut WorkState,
        bufs: &mut [ReactBuffer],
    ) -> Result<(), SimError> {
        let threads = bufs.len().min(pool.capacity());
        let Simulator {
            topo,
            modules,
            store,
            stats,
            now,
            metrics,
            wake_buf,
            ..
        } = self;
        let topo: &Topology = topo;
        let mut no_probe: Option<&mut (dyn Probe + 'static)> = None;
        let mut no_resil: Option<Box<ResilState>> = None;
        let mut newly = std::mem::take(wake_buf);
        let result = (|| {
            for level in plan.levels() {
                let snodes = &plan.nodes()[level.start as usize..level.straight_end as usize];
                let n_chunks = (snodes.len() / MIN_STRAIGHTS_PER_CHUNK).clamp(1, threads);
                if n_chunks >= 2 {
                    run_level_parallel(
                        topo,
                        modules,
                        store,
                        stats,
                        metrics,
                        *now,
                        snodes,
                        &mut bufs[..n_chunks],
                        pool,
                    )?;
                } else {
                    metrics.reacts += snodes.len() as u64;
                    for node in snodes {
                        react_straight(
                            topo,
                            modules,
                            store,
                            stats,
                            *now,
                            straight_id(node) as usize,
                        )?;
                    }
                }
                for node in &plan.nodes()[level.straight_end as usize..level.end as usize] {
                    let PlanNode::Island { island, members } = node else {
                        unreachable!("island segment holds only islands");
                    };
                    drain_island::<false, false>(
                        topo,
                        modules,
                        store,
                        stats,
                        metrics,
                        *now,
                        plan,
                        *island,
                        members,
                        work,
                        &mut newly,
                        &mut no_probe,
                        &mut no_resil,
                    )?;
                }
            }
            Ok(())
        })();
        self.wake_buf = newly;
        result
    }

    /// Lazy default resolution: default the lowest-numbered unresolved
    /// wire, wake its readers, resume reactions; repeat to full resolution.
    fn default_phase(&mut self) -> Result<(), SimError> {
        // Well-behaved netlists resolve every wire during the reaction
        // phase; the store counts resolutions, so that common case is a
        // single comparison instead of an O(edges) cursor sweep.
        if self.store.fully_resolved_step() {
            return Ok(());
        }
        let n_edges = self.topo.edge_count();
        let mut cursor = 0usize;
        loop {
            // Advance past fully resolved edges; resolution is monotone so
            // the cursor never needs to move backwards. Fast lanes are
            // skipped outright: kernels resolve them exhaustively during
            // the reaction phase (the classifier only admits shapes whose
            // handlers drive every wire), so the store's unresolved view
            // of those edges is a bypass artifact, not missing work.
            while cursor < n_edges
                && (self.store.is_fully_resolved(EdgeId(cursor as u32)) || self.fast_edge(cursor))
            {
                cursor += 1;
            }
            if cursor >= n_edges {
                return Ok(());
            }
            let e = EdgeId(cursor as u32);
            let wire = if !self.store.data(e).is_resolved() {
                self.store.write_with(e, |s| s.write_data(Res::No))?;
                Wire::Data
            } else if !self.store.enable(e).is_resolved() {
                let en = if self.store.data(e).is_yes() {
                    Res::Yes(())
                } else {
                    Res::No
                };
                self.store.write_with(e, |s| s.write_enable(en))?;
                Wire::Enable
            } else {
                self.store.write_with(e, |s| s.write_ack(Res::Yes(())))?;
                Wire::Ack
            };
            self.metrics.defaults += 1;
            if let Some(p) = self.probe.as_deref_mut() {
                emit_resolved(p, &self.store, self.now, e, wire, ResolvedBy::Default);
            }
            // Reader lists here have length ≤ 1 (data/enable wake the one
            // receiver; ack wakes at most the one declared sender), so
            // re-borrowing per index costs nothing and avoids a Vec.
            let n_readers = self.topo.readers(wire, e).len();
            for idx in 0..n_readers {
                let seed = self.topo.readers(wire, e)[idx];
                self.resume(&[seed])?;
            }
        }
    }

    /// True when edge `e` is shadowed by a live kernel lane this step (so
    /// the default phase must not try to resolve it through the store).
    #[inline]
    fn fast_edge(&self, e: usize) -> bool {
        self.spec
            .as_deref()
            .is_some_and(|s| s.live && s.plan.lane_of[e] != kernel::NO_LANE)
    }

    /// Specialized commit phase: completed fast-lane handshakes are folded
    /// into the same activity marks and per-edge transfer counts the store
    /// walk produces, then each instance commits through its kernel (or
    /// its dynamic handler), in the same instance-id order with the same
    /// gating rules as [`Simulator::commit_phase`].
    fn commit_phase_spec(&mut self) -> Result<(), SimError> {
        let mut spec = self
            .spec
            .take()
            .expect("specialized commit without kernel state");
        let r = self.commit_phase_spec_inner(&mut spec);
        self.spec = Some(spec);
        r
    }

    fn commit_phase_spec_inner(&mut self, spec: &mut SpecState) -> Result<(), SimError> {
        let Simulator {
            topo,
            modules,
            store,
            stats,
            now,
            metrics,
            active,
            transfer_counts,
            ..
        } = self;
        let topo: &Topology = topo;
        let SpecState { kernels, lanes, .. } = spec;
        let gated = topo.any_commit_gated();
        for lane in lanes.iter_mut() {
            debug_assert!(
                lane.fully_resolved(),
                "kernel left a fast lane unresolved (edge {})",
                lane.edge.0
            );
            if lane.completes() {
                lane.transferred = true;
                transfer_counts[lane.edge.0 as usize] += 1;
                if gated {
                    let em = topo.edge_meta(lane.edge);
                    active[em.src.inst.0 as usize] = true;
                    active[em.dst.inst.0 as usize] = true;
                }
            }
        }
        for &e in store.transfers() {
            transfer_counts[e.0 as usize] += 1;
            if gated {
                let em = topo.edge_meta(e);
                active[em.src.inst.0 as usize] = true;
                active[em.dst.inst.0 as usize] = true;
            }
        }
        let result = (|| {
            if topo.all_commit_noop() {
                return Ok(());
            }
            for i in 0..modules.len() {
                if topo.commit_noop(i) {
                    continue;
                }
                match kernels[i].as_mut() {
                    Some(k) => {
                        if topo.commit_gated(i) && !active[i] && !k.pending() {
                            continue;
                        }
                        metrics.commits += 1;
                        k.commit(lanes, store, stats, *now);
                    }
                    None => {
                        let module = &mut modules[i];
                        if topo.commit_gated(i) && !active[i] && !module.pending() {
                            continue;
                        }
                        metrics.commits += 1;
                        let inst = InstanceId(i as u32);
                        let mut ctx = CommitCtx {
                            inst,
                            info: topo.instance(inst),
                            store,
                            stats,
                            now: *now,
                        };
                        module.commit(&mut ctx)?;
                    }
                }
            }
            Ok(())
        })();
        // Clear activity marks by re-walking both transfer sources; runs
        // even on the error path so a failed step cannot poison the next.
        if gated {
            for lane in lanes.iter() {
                if lane.transferred {
                    let em = topo.edge_meta(lane.edge);
                    active[em.src.inst.0 as usize] = false;
                    active[em.dst.inst.0 as usize] = false;
                }
            }
            for &e in store.transfers() {
                let em = topo.edge_meta(e);
                active[em.src.inst.0 as usize] = false;
                active[em.dst.inst.0 as usize] = false;
            }
        }
        result
    }

    /// Commit with activity tracking: gated instances commit only when
    /// they were an endpoint of a completed transfer or report pending
    /// internal state; everyone else commits unconditionally. With
    /// `RESIL`, quarantined instances are skipped, handler failures go
    /// through the failure policy, and the transfer list is repaired
    /// first in case oscillation-tolerant writes dirtied it.
    fn commit_phase<const RESIL: bool>(&mut self) -> Result<(), SimError> {
        let Simulator {
            topo,
            modules,
            store,
            stats,
            now,
            metrics,
            probe,
            active,
            transfer_counts,
            resil,
            ..
        } = self;
        let topo: &Topology = topo;
        if RESIL {
            store.finalize_transfers();
        }
        if topo.any_commit_gated() {
            for &e in store.transfers() {
                let em = topo.edge_meta(e);
                active[em.src.inst.0 as usize] = true;
                active[em.dst.inst.0 as usize] = true;
                transfer_counts[e.0 as usize] += 1;
            }
        } else {
            // Nobody consumes the endpoint marks: count transfers only.
            for &e in store.transfers() {
                transfer_counts[e.0 as usize] += 1;
            }
        }
        let result = (|| {
            if topo.all_commit_noop() && !RESIL {
                return Ok(());
            }
            for (i, module) in modules.iter_mut().enumerate() {
                if topo.commit_noop(i) {
                    continue;
                }
                if RESIL {
                    let rs = resil.as_deref_mut().expect("resilient commit state");
                    if rs.quarantined[i] {
                        continue;
                    }
                }
                if topo.commit_gated(i) && !active[i] && !module.pending() {
                    continue;
                }
                metrics.commits += 1;
                let inst = InstanceId(i as u32);
                if let Some(p) = probe.as_deref_mut() {
                    p.commit_enter(*now, inst);
                }
                let mut ctx = CommitCtx {
                    inst,
                    info: topo.instance(inst),
                    store,
                    stats,
                    now: *now,
                };
                let r: Result<Result<(), SimError>, String> = if RESIL {
                    match catch_unwind(AssertUnwindSafe(|| module.commit(&mut ctx))) {
                        Ok(r) => Ok(r),
                        Err(payload) => Err(panic_message(payload)),
                    }
                } else {
                    Ok(module.commit(&mut ctx))
                };
                match r {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        if RESIL {
                            let rs = resil.as_deref_mut().expect("resilient commit state");
                            if rs.policy == FailurePolicy::Quarantine {
                                quarantine(rs, metrics, i, format!("commit error: {e}"));
                                scrub_module_state(module.as_mut());
                                continue;
                            }
                        }
                        return Err(e);
                    }
                    Err(msg) => {
                        let rs = resil.as_deref_mut().expect("resilient commit state");
                        if rs.policy == FailurePolicy::Quarantine {
                            quarantine(rs, metrics, i, format!("commit panic: {msg}"));
                            scrub_module_state(module.as_mut());
                            continue;
                        }
                        return Err(SimError::Panic(Box::new(PanicInfo {
                            instance: topo.name(inst).to_owned(),
                            step: *now,
                            message: msg,
                        })));
                    }
                }
                if let Some(p) = probe.as_deref_mut() {
                    p.commit_exit(*now, inst);
                }
            }
            if let Some(p) = probe.as_deref_mut() {
                // Sort a copy by edge id so trace output is deterministic
                // across schedulers (the set is; the resolution order is
                // not).
                let mut edges: Vec<EdgeId> = store.transfers().to_vec();
                edges.sort_unstable_by_key(|e| e.0);
                for e in edges {
                    let em = topo.edge_meta(e);
                    let Some(v) = store.transferred(e) else {
                        return Err(SimError::internal(format!(
                            "transfer list entry for edge {} has an incomplete handshake",
                            e.0
                        )));
                    };
                    p.transfer(*now, e, topo.name(em.src.inst), topo.name(em.dst.inst), v);
                }
            }
            Ok(())
        })();
        // Clear flags by walking the same transfer list: cost stays
        // proportional to activity, not to instance count. Runs even on
        // the error path so a failed step cannot poison the next one.
        if topo.any_commit_gated() {
            for &e in store.transfers() {
                let em = topo.edge_meta(e);
                active[em.src.inst.0 as usize] = false;
                active[em.dst.inst.0 as usize] = false;
            }
        }
        result
    }
}

/// Extract a readable message from a caught panic payload.
fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

fn wire_from_idx(widx: u8) -> Wire {
    match widx {
        0 => Wire::Data,
        1 => Wire::Enable,
        _ => Wire::Ack,
    }
}

/// Isolate instance `i` for the rest of the run (idempotent).
fn quarantine(rs: &mut ResilState, metrics: &mut EngineMetrics, i: usize, reason: String) {
    if !rs.quarantined[i] {
        rs.quarantined[i] = true;
        metrics.quarantines += 1;
        rs.pending_q.push((i as u32, reason));
    }
}

/// A freshly quarantined instance's state may be torn: the panic (or
/// error return) interrupted its handler mid-mutation, and how far the
/// mutation got is scheduler-dependent. Reset the module to its initial
/// state via the empty-blob [`Module::state_restore`] contract so
/// quarantined instances stay deterministic (snapshots of the run remain
/// scheduler-independent). A module whose reset itself panics keeps its
/// torn state — it is quarantined and never invoked again regardless.
fn scrub_module_state(m: &mut dyn Module) {
    let _ = catch_unwind(AssertUnwindSafe(|| m.state_restore(&[])));
}

/// Build the structured divergence report from the watchdog state: every
/// oscillating wire with its endpoints and flip count, plus the instance
/// cycle, in deterministic order.
fn divergence_error(topo: &Topology, rs: &ResilState, now: u64) -> SimError {
    let mut oscillating = Vec::new();
    let mut insts: Vec<u32> = Vec::new();
    for (&(edge, widx), &flips) in &rs.osc {
        let em = topo.edge_meta(EdgeId(edge));
        oscillating.push(OscillatingWire {
            edge,
            wire: ["data", "enable", "ack"][widx as usize],
            src: topo.name(em.src.inst).to_owned(),
            dst: topo.name(em.dst.inst).to_owned(),
            flips,
        });
        insts.push(em.src.inst.0);
        insts.push(em.dst.inst.0);
    }
    insts.sort_unstable();
    insts.dedup();
    let cycle = insts
        .into_iter()
        .map(|i| topo.name(InstanceId(i)).to_owned())
        .collect();
    SimError::Divergence(Box::new(DivergenceInfo {
        step: now,
        iters: rs.iters,
        limit: rs.max_iters.unwrap_or(0),
        oscillating,
        cycle,
    }))
}

/// Minimum straight nodes per parallel chunk: below this, dispatch and
/// merge overhead beats the win, so narrow levels run inline.
const MIN_STRAIGHTS_PER_CHUNK: usize = 4;

/// Instance id of a straight plan node (the straight segment of a level
/// holds nothing else).
fn straight_id(n: &PlanNode) -> u32 {
    match n {
        PlanNode::Straight(i) => *i,
        PlanNode::Island { .. } => unreachable!("straight segment holds only straights"),
    }
}

/// Run one cyclic SCC ("island") to its local fixed point with a FIFO
/// worklist. Wakes are filtered to island members: a reader outside the
/// island sits strictly later in the plan and runs regardless. The
/// watchdog / oscillation diagnostics flow through `react_one` unchanged,
/// so a cyclically inconsistent island fails with the same structured
/// [`SimError::Divergence`] the dynamic schedulers produce.
#[allow(clippy::too_many_arguments)]
fn drain_island<const PROBED: bool, const RESIL: bool>(
    topo: &Topology,
    modules: &mut [Box<dyn Module>],
    store: &mut SignalStore,
    stats: &mut Stats,
    metrics: &mut EngineMetrics,
    now: u64,
    plan: &CompiledPlan,
    island: u32,
    members: &[u32],
    work: &mut WorkState,
    newly: &mut Vec<(EdgeId, Wire)>,
    probe: &mut Option<&mut (dyn Probe + 'static)>,
    resil: &mut Option<Box<ResilState>>,
) -> Result<(), SimError> {
    debug_assert!(work.fifo.is_empty());
    for &m in members {
        work.queued[m as usize] = true;
        work.fifo.push_back(m);
    }
    while let Some(i) = work.fifo.pop_front() {
        work.queued[i as usize] = false;
        newly.clear();
        react_one::<PROBED, RESIL>(
            topo, modules, store, stats, metrics, now, i as usize, newly, probe, resil,
        )?;
        for (e, wire) in newly.drain(..) {
            for &t in topo.readers(wire, e) {
                if plan.island_of(t) == island && !work.queued[t as usize] {
                    work.queued[t as usize] = true;
                    work.fifo.push_back(t);
                }
            }
        }
    }
    Ok(())
}

/// Run one fully specialized island to its local fixed point. All members
/// are kernels (the classifier's all-or-none rule) and every member edge
/// is a fast lane, so wake tracking rides on the lane writes: `Io::put`
/// records newly resolved wires and the CSR wake tables re-queue island
/// readers, exactly like the dynamic island driver. Specialized islands
/// are data-acyclic by construction (only ack feedback), so the fixed
/// point terminates without watchdog support.
#[allow(clippy::too_many_arguments)]
fn drain_island_spec(
    topo: &Topology,
    kernels: &mut [Option<Kernel>],
    lanes: &mut [Lane],
    store: &mut SignalStore,
    metrics: &mut EngineMetrics,
    now: u64,
    plan: &CompiledPlan,
    island: u32,
    members: &[u32],
    work: &mut WorkState,
    newly: &mut Vec<(EdgeId, Wire)>,
) -> Result<(), SimError> {
    debug_assert!(work.fifo.is_empty());
    for &m in members {
        work.queued[m as usize] = true;
        work.fifo.push_back(m);
    }
    while let Some(i) = work.fifo.pop_front() {
        work.queued[i as usize] = false;
        newly.clear();
        metrics.reacts += 1;
        let k = kernels[i as usize]
            .as_ref()
            .expect("specialized island member without a kernel");
        let mut io = kernel::Io {
            lanes: &mut *lanes,
            store: &mut *store,
            newly: Some(&mut *newly),
            now,
        };
        k.react(&mut io)?;
        for (e, wire) in newly.drain(..) {
            for &t in topo.readers(wire, e) {
                if plan.island_of(t) == island && !work.queued[t as usize] {
                    work.queued[t as usize] = true;
                    work.fifo.push_back(t);
                }
            }
        }
    }
    Ok(())
}

/// Execute one level's straight segment across the pool. The plan's
/// invariants make this sound and deterministic:
///
/// * straight segments are sorted by instance id, so the module slice
///   partitions into disjoint `&mut` chunks;
/// * no dependency edge joins two same-level nodes — each connection's
///   endpoints are either in one island or on strictly different levels —
///   so reads against the shared `&SignalStore` only observe wires
///   settled by earlier levels, which are final;
/// * writes are buffered per chunk and applied at the barrier in plan
///   (chunk) order, reproducing the serial scheduler's exact store
///   mutation sequence.
///
/// One observable difference from the serial path: a write the store
/// rejects (a contract violation) surfaces here at the barrier rather
/// than inside the module's `react`, so a module that would have
/// swallowed the error cannot — the step fails either way.
#[allow(clippy::too_many_arguments)]
fn run_level_parallel(
    topo: &Topology,
    modules: &mut [Box<dyn Module>],
    store: &mut SignalStore,
    stats: &mut Stats,
    metrics: &mut EngineMetrics,
    now: u64,
    snodes: &[PlanNode],
    bufs: &mut [ReactBuffer],
    pool: &mut WorkerPool,
) -> Result<(), SimError> {
    struct Chunk<'a> {
        nodes: &'a [PlanNode],
        mods: &'a mut [Box<dyn Module>],
        base: usize,
        buf: &'a mut ReactBuffer,
        err: Option<SimError>,
    }
    let n_chunks = bufs.len();
    let per = snodes.len().div_ceil(n_chunks);
    let mut chunks: Vec<Chunk<'_>> = Vec::with_capacity(n_chunks);
    let mut rem = modules;
    let mut consumed = 0usize;
    for (c, buf) in bufs.iter_mut().enumerate() {
        let lo = c * per;
        let hi = (lo + per).min(snodes.len());
        if lo >= hi {
            break;
        }
        let nodes = &snodes[lo..hi];
        let first = straight_id(&nodes[0]) as usize;
        let last = straight_id(&nodes[nodes.len() - 1]) as usize;
        let tmp = std::mem::take(&mut rem);
        let (_, tail) = tmp.split_at_mut(first - consumed);
        let (mine, tail) = tail.split_at_mut(last - first + 1);
        rem = tail;
        consumed = last + 1;
        buf.clear();
        chunks.push(Chunk {
            nodes,
            mods: mine,
            base: first,
            buf,
            err: None,
        });
    }
    // Burst: every chunk reacts its instances against the read-only
    // store, recording effects into its own buffer.
    {
        let store_ro: &SignalStore = store;
        let mut tasks: Vec<_> = chunks
            .iter_mut()
            .map(|ch| {
                move || {
                    for node in ch.nodes {
                        let i = straight_id(node) as usize;
                        ch.buf.reacts += 1;
                        let inst = InstanceId(i as u32);
                        let mut ctx = ReactCtx {
                            inst,
                            info: topo.instance(inst),
                            pmeta: topo.hot_ports(inst),
                            eflat: topo.edges_flat(),
                            sink: CtxSink::Buffered {
                                store: store_ro,
                                buf: &mut *ch.buf,
                            },
                            now,
                            faults: None,
                            osc: None,
                        };
                        if let Err(e) = ch.mods[i - ch.base].react(&mut ctx) {
                            ch.err = Some(e);
                            return;
                        }
                    }
                }
            })
            .collect();
        let mut task_refs: Vec<&mut (dyn FnMut() + Send)> = tasks
            .iter_mut()
            .map(|t| t as &mut (dyn FnMut() + Send))
            .collect();
        let panics = pool.run(&mut task_refs);
        if let Some(p) = panics.into_iter().flatten().next() {
            // A raw module panic: drop the partial buffers, then re-raise.
            // (The resilient catch-and-quarantine policies never reach
            // this path — installing one forces the serial fallback.)
            drop(tasks);
            for ch in &mut chunks {
                ch.buf.clear();
            }
            std::panic::resume_unwind(p);
        }
    }
    // Barrier merge, chunk by chunk in plan order.
    let mut first_err: Option<SimError> = None;
    for ch in &mut chunks {
        metrics.reacts += ch.buf.reacts;
        ch.buf.reacts = 0;
        for op in ch.buf.ops.drain(..) {
            if first_err.is_some() {
                continue;
            }
            match op {
                BufOp::Write(inst, e, w) => {
                    if let Err(err) = store.write(e, w) {
                        let info = topo.instance(InstanceId(inst));
                        first_err = Some(SimError::contract(format!(
                            "{} ({}): {err}",
                            info.name, info.spec.template
                        )));
                    }
                }
                BufOp::Count(inst, name, by) => stats.count(InstanceId(inst), name, by),
                BufOp::Sample(inst, name, v) => stats.sample(InstanceId(inst), name, v),
                BufOp::Histo(inst, name, v) => stats.histo(InstanceId(inst), name, v),
            }
        }
        if first_err.is_none() {
            first_err = ch.err.take();
        }
    }
    match first_err {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// Invoke one instance's `react` handler with a context over the shared
/// store (free function so callers can borrow disjoint simulator fields).
/// Monomorphized on probe presence and resilience: with
/// `PROBED = RESIL = false` neither the probe branches nor the fault /
/// React one *straight* plan node on the probe-off, fault-off path: no
/// wake bookkeeping (its readers are all later plan nodes), no newly
/// list, no catch_unwind — the minimal cost of invoking a handler.
#[inline]
fn react_straight(
    topo: &Topology,
    modules: &mut [Box<dyn Module>],
    store: &mut SignalStore,
    stats: &mut Stats,
    now: u64,
    i: usize,
) -> Result<(), SimError> {
    // `metrics.reacts` is batch-incremented by the caller per straight
    // segment (the count is known from the plan), not here per react.
    let inst = InstanceId(i as u32);
    let mut ctx = ReactCtx {
        inst,
        info: topo.instance(inst),
        pmeta: topo.hot_ports(inst),
        eflat: topo.edges_flat(),
        sink: CtxSink::Fast {
            store: &mut *store,
            stats: &mut *stats,
        },
        now,
        faults: None,
        osc: None,
    };
    modules[i].react(&mut ctx)
}

/// watchdog / quarantine machinery exist in the generated code.
#[allow(clippy::too_many_arguments)]
fn react_one<const PROBED: bool, const RESIL: bool>(
    topo: &Topology,
    modules: &mut [Box<dyn Module>],
    store: &mut SignalStore,
    stats: &mut Stats,
    metrics: &mut EngineMetrics,
    now: u64,
    i: usize,
    newly: &mut Vec<(EdgeId, Wire)>,
    probe: &mut Option<&mut (dyn Probe + 'static)>,
    resil: &mut Option<Box<ResilState>>,
) -> Result<(), SimError> {
    let inst = InstanceId(i as u32);
    let mut forced_panic = false;
    if RESIL {
        let rs = resil.as_deref_mut().expect("resilient react state");
        if rs.quarantined[i] {
            return Ok(()); // isolated: its ports live on the defaults
        }
        rs.iters += 1;
        if let Some(max) = rs.max_iters {
            if rs.iters > max {
                return Err(divergence_error(topo, rs, now));
            }
        }
        forced_panic = rs.active.panics(i as u32);
        if !forced_panic {
            if let Some(us) = rs.active.latency_us(i as u32) {
                std::thread::sleep(std::time::Duration::from_micros(us));
            }
        }
    }
    // The handler's verdict: Ok(handler result) or Err(panic message).
    // A plan-injected panic fires at entry of the instance's first react
    // of the step, before any partial writes — scheduler-independent.
    let caught: Result<Result<(), SimError>, String> = if RESIL && forced_panic {
        Err("injected panic (fault plan)".to_owned())
    } else {
        metrics.reacts += 1;
        if PROBED {
            if let Some(p) = probe.as_deref_mut() {
                p.react_enter(now, inst);
            }
        }
        let r: Result<Result<(), SimError>, String> = if RESIL {
            let rs = resil.as_deref_mut().expect("resilient react state");
            let seed = rs.plan.as_ref().map_or(0, |p| p.seed);
            let tolerant = rs.max_iters.is_some();
            let ResilState { active, osc, .. } = &mut *rs;
            let faults = (!active.signals.is_empty()).then_some((&*active, seed));
            let mut ctx = ReactCtx {
                inst,
                info: topo.instance(inst),
                pmeta: topo.hot_ports(inst),
                eflat: topo.edges_flat(),
                sink: CtxSink::Direct {
                    store: &mut *store,
                    stats: &mut *stats,
                    newly: &mut *newly,
                },
                now,
                faults,
                osc: if tolerant { Some(osc) } else { None },
            };
            match catch_unwind(AssertUnwindSafe(|| modules[i].react(&mut ctx))) {
                Ok(r) => Ok(r),
                Err(payload) => Err(panic_message(payload)),
            }
        } else {
            let mut ctx = ReactCtx {
                inst,
                info: topo.instance(inst),
                pmeta: topo.hot_ports(inst),
                eflat: topo.edges_flat(),
                sink: CtxSink::Direct {
                    store: &mut *store,
                    stats: &mut *stats,
                    newly: &mut *newly,
                },
                now,
                faults: None,
                osc: None,
            };
            Ok(modules[i].react(&mut ctx))
        };
        if PROBED {
            if let Some(p) = probe.as_deref_mut() {
                for &(e, wire) in newly.iter() {
                    emit_resolved(p, store, now, e, wire, ResolvedBy::Module(inst));
                }
                p.react_exit(now, inst);
            }
        }
        r
    };
    match caught {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => {
            if RESIL {
                let rs = resil.as_deref_mut().expect("resilient react state");
                if rs.policy == FailurePolicy::Quarantine {
                    quarantine(rs, metrics, i, format!("react error: {e}"));
                    scrub_module_state(modules[i].as_mut());
                    return Ok(());
                }
            }
            Err(e)
        }
        Err(msg) => {
            let rs = resil.as_deref_mut().expect("resilient react state");
            if rs.policy == FailurePolicy::Quarantine {
                quarantine(rs, metrics, i, format!("react panic: {msg}"));
                scrub_module_state(modules[i].as_mut());
                Ok(())
            } else {
                Err(SimError::Panic(Box::new(PanicInfo {
                    instance: topo.name(inst).to_owned(),
                    step: now,
                    message: msg,
                })))
            }
        }
    }
}

/// Report one newly resolved wire to a probe, reading its final value
/// from the store (data carries the payload; enable/ack just polarity).
fn emit_resolved(
    p: &mut dyn Probe,
    store: &SignalStore,
    now: u64,
    e: EdgeId,
    wire: Wire,
    by: ResolvedBy,
) {
    match wire {
        Wire::Data => {
            let d = store.data(e);
            p.signal_resolved(now, e, wire, d.is_yes(), d.as_yes(), by);
        }
        Wire::Enable => p.signal_resolved(now, e, wire, store.enable(e).is_yes(), None, by),
        Wire::Ack => p.signal_resolved(now, e, wire, store.ack(e).is_yes(), None, by),
    }
}

/// Where a [`ReactCtx`]'s effects land: directly in the store (serial
/// paths) or in a per-partition buffer merged at a level barrier
/// (parallel bursts, where the store is shared read-only).
enum CtxSink<'a> {
    /// Immediate writes with wake bookkeeping.
    Direct {
        store: &'a mut SignalStore,
        stats: &'a mut Stats,
        newly: &'a mut Vec<(EdgeId, Wire)>,
    },
    /// Immediate writes with *no* wake bookkeeping: the compiled
    /// scheduler's straight-line nodes (probe off, faults off) never
    /// wake anyone, so recording newly resolved wires would be pure
    /// overhead on the hottest path in the kernel.
    Fast {
        store: &'a mut SignalStore,
        stats: &'a mut Stats,
    },
    /// Deferred effects; no wake bookkeeping (every reader of a burst
    /// participant's wires sits on a strictly later level).
    Buffered {
        store: &'a SignalStore,
        buf: &'a mut ReactBuffer,
    },
}

/// Context handed to [`Module::react`]: resolved-signal reads plus
/// monotonic wire writes on the reacting instance's own ports.
pub struct ReactCtx<'a> {
    inst: InstanceId,
    info: &'a InstanceInfo,
    /// This instance's slice of the topology's dense port table — the
    /// hot-path view of `info`'s port metadata (one or two cache lines
    /// for a whole netlist's worth of ports).
    pmeta: &'a [PortMeta],
    /// The topology-global flattened port→edge slab `pmeta` indexes.
    eflat: &'a [EdgeId],
    sink: CtxSink<'a>,
    now: u64,
    /// Active fault table and plan seed; `None` on the fault-off path
    /// (and when this step has no active signal faults).
    faults: Option<(&'a ActiveFaults, u64)>,
    /// Oscillation counters; `Some` switches writes to the tolerant mode
    /// (watchdog enabled).
    osc: Option<&'a mut BTreeMap<(u32, u8), u64>>,
}

impl<'a> ReactCtx<'a> {
    /// Current time-step.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// This instance's id.
    pub fn instance(&self) -> InstanceId {
        self.inst
    }

    /// This instance's name.
    pub fn name(&self) -> &str {
        &self.info.name
    }

    /// Number of connections on a port (0 when left unconnected).
    pub fn width(&self, port: PortId) -> usize {
        self.pmeta[port.0 as usize].len as usize
    }

    #[inline]
    fn edge(&self, port: PortId, index: usize) -> Option<EdgeId> {
        let m = &self.pmeta[port.0 as usize];
        if (index as u32) < m.len {
            Some(self.eflat[m.off as usize + index])
        } else {
            None
        }
    }

    /// The store to read resolved signals from (shared by both sinks; the
    /// buffered sink's deferred writes are invisible here, which is fine —
    /// a burst participant's readers run on later levels).
    #[inline]
    fn st(&self) -> &SignalStore {
        match &self.sink {
            CtxSink::Direct { store, .. } => store,
            CtxSink::Fast { store, .. } => store,
            CtxSink::Buffered { store, .. } => store,
        }
    }

    #[inline]
    fn check_dir(&self, port: PortId, want: Dir) -> Result<(), SimError> {
        if self.pmeta[port.0 as usize].dir != want {
            return Err(SimError::port(format!(
                "{}.{}: wrong direction for this operation",
                self.info.name,
                self.info.spec.port_spec(port).name
            )));
        }
        Ok(())
    }

    /// The data wire arriving on an input connection. An unconnected or
    /// out-of-range slot reads as `No` — the partial-specification default.
    /// Returns a clone; scalar `Value`s are plain copies and the large
    /// variants are reference counted, so this is cheap.
    #[inline]
    pub fn data(&self, port: PortId, index: usize) -> Res<Value> {
        match self.edge(port, index) {
            Some(e) => self.st().data(e),
            None => Res::No,
        }
    }

    /// The enable wire arriving on an input connection.
    #[inline]
    pub fn enable(&self, port: PortId, index: usize) -> Res<()> {
        match self.edge(port, index) {
            Some(e) => self.st().enable(e),
            None => Res::No,
        }
    }

    /// The ack wire arriving on an output connection. Unconnected slots
    /// read as `Yes` (an absent consumer accepts everything).
    ///
    /// Reading acks reactively requires the template to declare
    /// [`crate::module::ModuleSpec::with_ack_in_react`]; otherwise the
    /// kernel does not re-wake this module when acks resolve, and the read
    /// would be racy.
    pub fn ack(&self, port: PortId, index: usize) -> Result<Res<()>, SimError> {
        if !self.info.spec.reads_ack_in_react {
            return Err(SimError::contract(format!(
                "{} ({}): react reads an ack wire but the template did not \
                 declare with_ack_in_react()",
                self.info.name, self.info.spec.template
            )));
        }
        Ok(match self.edge(port, index) {
            Some(e) => self.st().ack(e),
            None => Res::Yes(()),
        })
    }

    /// The single write choke point: every module wire drive funnels
    /// through here as a [`WireWrite`] value, so an active fault can
    /// transform (or swallow) it in flight before it reaches the store.
    /// Kernel default-semantics writes do not pass through this path and
    /// are never faulted.
    fn write(&mut self, port: PortId, index: usize, w: WireWrite) -> Result<(), SimError> {
        let Some(e) = self.edge(port, index) else {
            return Ok(()); // unconnected: silently accepted (partial spec)
        };
        let wire = w.wire();
        let w = match &self.faults {
            None => w,
            Some((active, seed)) => match active.signal(e.0, wire) {
                None => w,
                Some(kind) => match apply_fault(kind, w, e.0, self.now, *seed) {
                    Some(w) => w,
                    None => return Ok(()), // dropped on the wire
                },
            },
        };
        let tolerant = self.osc.is_some();
        match &mut self.sink {
            CtxSink::Fast { store, .. } => match store.write(e, w) {
                Ok(_) => Ok(()),
                Err(err) => Err(SimError::contract(format!(
                    "{} ({}): {err}",
                    self.info.name, self.info.spec.template
                ))),
            },
            CtxSink::Buffered { buf, .. } => {
                // Deferred: applied — and contract-checked — at the level
                // barrier, in plan order. No wake bookkeeping is needed:
                // every reader of this wire runs on a later level.
                buf.ops.push(BufOp::Write(self.inst.0, e, w));
                Ok(())
            }
            CtxSink::Direct { store, newly, .. } => {
                let result = if tolerant {
                    store.write_tolerant(e, w)
                } else {
                    store.write(e, w)
                };
                match result {
                    Ok(WriteOutcome::NewlyResolved) => {
                        newly.push((e, wire));
                        Ok(())
                    }
                    Ok(WriteOutcome::Oscillated) => {
                        if let Some(osc) = self.osc.as_deref_mut() {
                            *osc.entry((e.0, wire_idx(wire))).or_insert(0) += 1;
                        }
                        // Re-woken like a fresh resolution: the re-resolved
                        // value must propagate to readers (and the watchdog
                        // bounds the resulting iteration).
                        newly.push((e, wire));
                        Ok(())
                    }
                    Ok(WriteOutcome::Idempotent) => Ok(()),
                    Err(err) => Err(SimError::contract(format!(
                        "{} ({}): {err}",
                        self.info.name, self.info.spec.template
                    ))),
                }
            }
        }
    }

    /// Fused data+enable drive backing [`ReactCtx::send`] /
    /// [`ReactCtx::send_nothing`]: one edge lookup and one store slot
    /// access instead of two full write round-trips. Falls back to the
    /// per-wire path whenever a fault table or oscillation tolerance is
    /// active — those must see (and may transform) each wire write
    /// individually.
    #[inline]
    fn write_pair(
        &mut self,
        port: PortId,
        index: usize,
        data: Res<Value>,
        enable: Res<()>,
    ) -> Result<(), SimError> {
        if self.faults.is_some() || self.osc.is_some() {
            self.write(port, index, WireWrite::Data(data))?;
            return self.write(port, index, WireWrite::Enable(enable));
        }
        let Some(e) = self.edge(port, index) else {
            return Ok(()); // unconnected: silently accepted (partial spec)
        };
        let result = match &mut self.sink {
            CtxSink::Fast { store, .. } => store.write_pair(e, data, enable).map(|_| ()),
            CtxSink::Direct { store, newly, .. } => {
                store.write_pair(e, data, enable).map(|(o1, o2)| {
                    if o1 == WriteOutcome::NewlyResolved {
                        newly.push((e, Wire::Data));
                    }
                    if o2 == WriteOutcome::NewlyResolved {
                        newly.push((e, Wire::Enable));
                    }
                })
            }
            CtxSink::Buffered { buf, .. } => {
                buf.ops
                    .push(BufOp::Write(self.inst.0, e, WireWrite::Data(data)));
                buf.ops
                    .push(BufOp::Write(self.inst.0, e, WireWrite::Enable(enable)));
                Ok(())
            }
        };
        result.map_err(|err| {
            SimError::contract(format!(
                "{} ({}): {err}",
                self.info.name, self.info.spec.template
            ))
        })
    }

    /// Send a value on an output connection: drives data `Yes` and enable
    /// `Yes` together (the common case).
    #[inline]
    pub fn send(&mut self, port: PortId, index: usize, v: Value) -> Result<(), SimError> {
        self.check_dir(port, Dir::Out)?;
        self.write_pair(port, index, Res::Yes(v), Res::Yes(()))
    }

    /// Explicitly send nothing on an output connection this time-step:
    /// drives data `No` and enable `No`. Well-behaved modules resolve every
    /// connected output rather than leaving it to the defaults.
    #[inline]
    pub fn send_nothing(&mut self, port: PortId, index: usize) -> Result<(), SimError> {
        self.check_dir(port, Dir::Out)?;
        self.write_pair(port, index, Res::No, Res::No)
    }

    /// Drive only the data wire (control-split protocols that decide enable
    /// separately).
    pub fn set_data(&mut self, port: PortId, index: usize, v: Res<Value>) -> Result<(), SimError> {
        self.check_dir(port, Dir::Out)?;
        self.write(port, index, WireWrite::Data(v))
    }

    /// Drive only the enable wire.
    pub fn set_enable(&mut self, port: PortId, index: usize, en: bool) -> Result<(), SimError> {
        self.check_dir(port, Dir::Out)?;
        let r = if en { Res::Yes(()) } else { Res::No };
        self.write(port, index, WireWrite::Enable(r))
    }

    /// Drive the ack wire of an input connection: accept (`true`) or
    /// refuse (`false`) the offered data.
    #[inline]
    pub fn set_ack(&mut self, port: PortId, index: usize, accept: bool) -> Result<(), SimError> {
        self.check_dir(port, Dir::In)?;
        let r = if accept { Res::Yes(()) } else { Res::No };
        self.write(port, index, WireWrite::Ack(r))
    }

    /// Fused receive: drive the ack wire of an input connection *and*
    /// read its data wire in one store access — the receiver-side twin
    /// of [`ReactCtx::send`]'s fused data+enable drive, and the idiom
    /// for the overwhelmingly common "accept whatever arrives, then look
    /// at it" receiver. Exactly equivalent to
    /// [`ReactCtx::set_ack`] followed by [`ReactCtx::data`].
    /// An unconnected slot reads as `No` (the ack is silently accepted).
    #[inline]
    pub fn recv(
        &mut self,
        port: PortId,
        index: usize,
        accept: bool,
    ) -> Result<Res<Value>, SimError> {
        self.check_dir(port, Dir::In)?;
        let r = if accept { Res::Yes(()) } else { Res::No };
        let Some(e) = self.edge(port, index) else {
            return Ok(Res::No); // unconnected: partial-spec default
        };
        // Faults and oscillation tolerance must see the individual ack
        // write (to transform or count it), so take the per-wire path.
        if self.faults.is_some() || self.osc.is_some() {
            self.write(port, index, WireWrite::Ack(r))?;
            return Ok(self.st().data(e));
        }
        let result = match &mut self.sink {
            CtxSink::Fast { store, .. } => store.recv(e, r).map(|(_, d)| d),
            CtxSink::Direct { store, newly, .. } => store.recv(e, r).map(|(o, d)| {
                if o == WriteOutcome::NewlyResolved {
                    newly.push((e, Wire::Ack));
                }
                d
            }),
            CtxSink::Buffered { store, buf } => {
                buf.ops
                    .push(BufOp::Write(self.inst.0, e, WireWrite::Ack(r)));
                Ok(store.data(e))
            }
        };
        result.map_err(|err| {
            SimError::contract(format!(
                "{} ({}): {err}",
                self.info.name, self.info.spec.template
            ))
        })
    }

    /// Add to one of this instance's counters.
    pub fn count(&mut self, name: &'static str, by: u64) {
        match &mut self.sink {
            CtxSink::Direct { stats, .. } => stats.count(self.inst, name, by),
            CtxSink::Fast { stats, .. } => stats.count(self.inst, name, by),
            CtxSink::Buffered { buf, .. } => buf.ops.push(BufOp::Count(self.inst.0, name, by)),
        }
    }

    /// Record a sample on one of this instance's sampled stats.
    pub fn sample(&mut self, name: &'static str, v: f64) {
        match &mut self.sink {
            CtxSink::Direct { stats, .. } => stats.sample(self.inst, name, v),
            CtxSink::Fast { stats, .. } => stats.sample(self.inst, name, v),
            CtxSink::Buffered { buf, .. } => buf.ops.push(BufOp::Sample(self.inst.0, name, v)),
        }
    }

    /// Record a value into one of this instance's log2-bucket histograms
    /// (latency/occupancy distributions, not just min/mean/max).
    pub fn histo(&mut self, name: &'static str, v: u64) {
        match &mut self.sink {
            CtxSink::Direct { stats, .. } => stats.histo(self.inst, name, v),
            CtxSink::Fast { stats, .. } => stats.histo(self.inst, name, v),
            CtxSink::Buffered { buf, .. } => buf.ops.push(BufOp::Histo(self.inst.0, name, v)),
        }
    }
}

/// Context handed to [`Module::commit`]: read-only access to the fully
/// resolved signals of the time-step, plus statistics.
pub struct CommitCtx<'a> {
    inst: InstanceId,
    info: &'a InstanceInfo,
    store: &'a SignalStore,
    stats: &'a mut Stats,
    now: u64,
}

impl<'a> CommitCtx<'a> {
    /// Current time-step.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// This instance's id.
    pub fn instance(&self) -> InstanceId {
        self.inst
    }

    /// This instance's name.
    pub fn name(&self) -> &str {
        &self.info.name
    }

    /// Number of connections on a port.
    pub fn width(&self, port: PortId) -> usize {
        self.info.width(port)
    }

    fn edge(&self, port: PortId, index: usize) -> Option<EdgeId> {
        self.info.edge(port, index)
    }

    /// The value transferred in on an input connection this time-step
    /// (data present, enabled and accepted), if any. Returns a clone;
    /// `Value` payloads are reference counted, so this is cheap.
    pub fn transferred_in(&self, port: PortId, index: usize) -> Option<Value> {
        let e = self.edge(port, index)?;
        self.store.transferred(e).cloned()
    }

    /// True iff the value this instance sent on an output connection was
    /// accepted (the transfer completed). An unconnected slot reads as
    /// `true` — the partial-specification default is that an absent
    /// consumer accepts everything — so this is only meaningful when the
    /// module actually offered something this cycle.
    pub fn transferred_out(&self, port: PortId, index: usize) -> bool {
        match self.edge(port, index) {
            Some(e) => self.store.transfers_on(e),
            None => true,
        }
    }

    /// Final resolution of the data wire on an input connection (a clone).
    pub fn data(&self, port: PortId, index: usize) -> Res<Value> {
        match self.edge(port, index) {
            Some(e) => self.store.data(e),
            None => Res::No,
        }
    }

    /// Final resolution of the ack wire on an output connection.
    pub fn acked(&self, port: PortId, index: usize) -> bool {
        match self.edge(port, index) {
            Some(e) => self.store.ack(e).is_yes(),
            None => true,
        }
    }

    /// Add to one of this instance's counters.
    pub fn count(&mut self, name: &'static str, by: u64) {
        self.stats.count(self.inst, name, by);
    }

    /// Record a sample on one of this instance's sampled stats.
    pub fn sample(&mut self, name: &'static str, v: f64) {
        self.stats.sample(self.inst, name, v);
    }

    /// Record a value into one of this instance's log2-bucket histograms
    /// (latency/occupancy distributions, not just min/mean/max).
    pub fn histo(&mut self, name: &'static str, v: u64) {
        self.stats.histo(self.inst, name, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleSpec;
    use crate::netlist::NetlistBuilder;

    /// Sends its cycle number every step.
    struct Src;
    impl Module for Src {
        fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
            ctx.send(PortId(0), 0, Value::Word(ctx.now()))
        }
        fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
    }

    /// Sends on even cycles only (resolves its output explicitly).
    struct EvenSrc;
    impl Module for EvenSrc {
        fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
            if ctx.now().is_multiple_of(2) {
                ctx.send(PortId(0), 0, Value::Word(ctx.now()))
            } else {
                ctx.send_nothing(PortId(0), 0)
            }
        }
        fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
    }

    /// Accepts everything; counts received values in commit. Opted into
    /// activity-gated commit with no pending state.
    struct GatedSink;
    impl Module for GatedSink {
        fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
            ctx.set_ack(PortId(0), 0, true)
        }
        fn commit(&mut self, ctx: &mut CommitCtx<'_>) -> Result<(), SimError> {
            ctx.count("commits", 1);
            if ctx.transferred_in(PortId(0), 0).is_some() {
                ctx.count("received", 1);
            }
            Ok(())
        }
    }

    fn gated_sink_spec() -> ModuleSpec {
        ModuleSpec::new("gsink")
            .input("in", 1, 1)
            .commit_only_when_active()
    }

    fn even_pair(sched: SchedKind) -> Simulator {
        let mut b = NetlistBuilder::new();
        let s = b
            .add(
                "s",
                ModuleSpec::new("esrc").output("out", 1, 1),
                Box::new(EvenSrc),
            )
            .unwrap();
        let k = b.add("k", gated_sink_spec(), Box::new(GatedSink)).unwrap();
        b.connect(s, "out", k, "in").unwrap();
        Simulator::new(b.build().unwrap(), sched)
    }

    #[test]
    fn gated_commit_skips_idle_steps() {
        // 10 steps, transfers on the 5 even ones: the ungated source
        // commits 10 times, the gated sink only 5.
        let mut sim = even_pair(SchedKind::Dynamic);
        sim.run(10).unwrap();
        assert_eq!(sim.metrics().steps, 10);
        assert_eq!(sim.metrics().commits, 10 + 5);
        let k = sim.instance_by_name("k").unwrap();
        assert_eq!(sim.stats().counter(k, "received"), 5);
    }

    #[test]
    fn gated_commit_set_is_scheduler_independent() {
        let mut commits = Vec::new();
        for sched in ALL_SCHEDS {
            let mut sim = even_pair(sched);
            sim.run(9).unwrap();
            commits.push(sim.metrics().commits);
        }
        for c in &commits[1..] {
            assert_eq!(*c, commits[0]);
        }
    }

    /// Gated module with internal pending state: a one-slot delay line.
    struct PendingReg {
        held: Option<Value>,
    }
    impl Module for PendingReg {
        fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
            match &self.held {
                Some(v) => ctx.send(PortId(1), 0, v.clone())?,
                None => ctx.send_nothing(PortId(1), 0)?,
            }
            ctx.set_ack(PortId(0), 0, self.held.is_none())
        }
        fn commit(&mut self, ctx: &mut CommitCtx<'_>) -> Result<(), SimError> {
            if self.held.is_some() && ctx.transferred_out(PortId(1), 0) {
                self.held = None;
            }
            if let Some(v) = ctx.transferred_in(PortId(0), 0) {
                self.held = Some(v);
            }
            Ok(())
        }
        fn pending(&self) -> bool {
            self.held.is_some()
        }
    }

    #[test]
    fn pending_state_forces_commit_without_transfers() {
        // Source sends once (step 0); the register holds the value and, as
        // nothing downstream exists beyond an unconnected output... use a
        // sink that refuses, so the register must rely on pending() to
        // keep committing. Here: register's output is unconnected, so
        // transferred_out is vacuously true and held clears on step 1 via
        // its own commit — which only runs because pending() forced it.
        struct OneShot {
            sent: bool,
        }
        impl Module for OneShot {
            fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
                if !self.sent {
                    ctx.send(PortId(0), 0, Value::Word(42))
                } else {
                    ctx.send_nothing(PortId(0), 0)
                }
            }
            fn commit(&mut self, ctx: &mut CommitCtx<'_>) -> Result<(), SimError> {
                if ctx.transferred_out(PortId(0), 0) && !self.sent {
                    self.sent = true;
                }
                Ok(())
            }
        }
        let mut b = NetlistBuilder::new();
        let s = b
            .add(
                "s",
                ModuleSpec::new("oneshot").output("out", 1, 1),
                Box::new(OneShot { sent: false }),
            )
            .unwrap();
        let r = b
            .add(
                "r",
                ModuleSpec::new("reg")
                    .input("in", 1, 1)
                    .output("out", 0, 1)
                    .commit_only_when_active(),
                Box::new(PendingReg { held: None }),
            )
            .unwrap();
        b.connect(s, "out", r, "in").unwrap();
        let mut sim = Simulator::new(b.build().unwrap(), SchedKind::Dynamic);
        sim.run(1).unwrap(); // transfer s -> r; r commits (active), holds 42
        sim.run(1).unwrap(); // no transfer; r commits anyway (pending), clears
        let _ = r;
        // Step 3: r is idle and empty; its commit is skipped.
        let commits_before = sim.metrics().commits;
        sim.run(1).unwrap();
        // Only the (ungated) source committed in step 3.
        assert_eq!(sim.metrics().commits, commits_before + 1);
    }

    #[test]
    fn transfer_counts_accumulate_per_edge() {
        let mut sim = even_pair(SchedKind::Static);
        sim.run(10).unwrap();
        assert_eq!(sim.transfer_counts(), &[5]);
    }

    #[test]
    fn layered_constructor_shares_topology() {
        let mut b = NetlistBuilder::new();
        let s = b
            .add(
                "s",
                ModuleSpec::new("src").output("out", 1, 1),
                Box::new(Src),
            )
            .unwrap();
        let k = b.add("k", gated_sink_spec(), Box::new(GatedSink)).unwrap();
        b.connect(s, "out", k, "in").unwrap();
        let (topo, modules) = b.build().unwrap().into_parts();
        let topo = Arc::new(topo);
        let mut sim1 = Simulator::from_parts(topo.clone(), modules, SchedKind::Static);
        sim1.run(3).unwrap();
        assert_eq!(sim1.stats().counter(k, "received"), 3);
        // A second simulator over the same Arc<Topology> reuses the cached
        // ranks and wake tables.
        let modules2: Vec<Box<dyn Module>> = vec![Box::new(Src), Box::new(GatedSink)];
        let mut sim2 = Simulator::from_parts(topo.clone(), modules2, SchedKind::Static);
        sim2.run(5).unwrap();
        assert_eq!(sim2.stats().counter(k, "received"), 5);
        assert_eq!(Arc::strong_count(&topo), 3);
    }

    #[test]
    fn idle_step_performs_no_signal_reset_writes() {
        // Kernel-level restatement of the O(1)-reset guarantee: a step in
        // which no module drives anything still runs the default phase
        // (inherently O(edges)), but begin_step itself must not touch
        // slots. We check via the store's write counter across the
        // boundary between two steps.
        struct Silent;
        impl Module for Silent {
            fn react(&mut self, _: &mut ReactCtx<'_>) -> Result<(), SimError> {
                Ok(())
            }
            fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
                Ok(())
            }
        }
        let mut b = NetlistBuilder::new();
        let s = b
            .add(
                "s",
                ModuleSpec::new("silent").output("out", 0, 8),
                Box::new(Silent),
            )
            .unwrap();
        let k = b
            .add(
                "k",
                ModuleSpec::new("silent2").input("in", 0, 8),
                Box::new(Silent),
            )
            .unwrap();
        for _ in 0..8 {
            b.connect(s, "out", k, "in").unwrap();
        }
        let mut sim = Simulator::new(b.build().unwrap(), SchedKind::Dynamic);
        sim.run(1).unwrap();
        let writes_per_idle_step = sim.store.slot_writes();
        sim.run(1).unwrap();
        // Steady state: every step costs the same — the default phase's
        // (freshen + 3 wire writes) × 8 edges — with no extra reset sweep.
        assert_eq!(sim.store.slot_writes(), writes_per_idle_step * 2);
        assert_eq!(sim.metrics().defaults, 2 * 3 * 8);
    }

    const ALL_SCHEDS: [SchedKind; 5] = [
        SchedKind::Sweep,
        SchedKind::Dynamic,
        SchedKind::Static,
        SchedKind::Compiled,
        SchedKind::CompiledParallel,
    ];

    #[test]
    fn compiled_schedulers_match_dynamic_on_gated_pair() {
        let mut reference = even_pair(SchedKind::Dynamic);
        reference.run(10).unwrap();
        for sched in [SchedKind::Compiled, SchedKind::CompiledParallel] {
            let mut sim = even_pair(sched);
            assert!(sim.compiled_plan().is_some());
            sim.run(10).unwrap();
            let k = sim.instance_by_name("k").unwrap();
            assert_eq!(sim.stats().counter(k, "received"), 5, "{sched:?}");
            assert_eq!(sim.metrics().commits, reference.metrics().commits);
            assert_eq!(sim.metrics().defaults, reference.metrics().defaults);
            assert_eq!(sim.transfer_counts(), reference.transfer_counts());
            // One react per instance per step on an acyclic net: the
            // whole point of the compiled plan.
            assert_eq!(sim.metrics().reacts, 2 * 10, "{sched:?}");
        }
    }

    /// A wide two-level netlist (N independent source->sink pairs) so the
    /// parallel scheduler actually bursts: each level has 8 straight
    /// nodes, split across 2-3 chunks at parallelism 3.
    fn wide_pairs(sched: SchedKind, n: usize) -> Simulator {
        let mut b = NetlistBuilder::new();
        for p in 0..n {
            let s = b
                .add(
                    format!("s{p}"),
                    ModuleSpec::new("esrc").output("out", 1, 1),
                    Box::new(EvenSrc),
                )
                .unwrap();
            let k = b
                .add(format!("k{p}"), gated_sink_spec(), Box::new(GatedSink))
                .unwrap();
            b.connect(s, "out", k, "in").unwrap();
        }
        Simulator::new(b.build().unwrap(), sched)
    }

    #[test]
    fn parallel_level_bursts_merge_identically() {
        let mut reference = wide_pairs(SchedKind::Dynamic, 8);
        reference.run(9).unwrap();
        let mut sim = wide_pairs(SchedKind::CompiledParallel, 8);
        sim.set_parallelism(3);
        sim.run(9).unwrap();
        assert_eq!(sim.transfer_counts(), reference.transfer_counts());
        assert_eq!(sim.metrics().commits, reference.metrics().commits);
        assert_eq!(sim.metrics().defaults, reference.metrics().defaults);
        for p in 0..8 {
            let k = sim.instance_by_name(&format!("k{p}")).unwrap();
            assert_eq!(
                sim.stats().counter(k, "received"),
                reference.stats().counter(k, "received")
            );
        }
        // Burst or not, every instance reacts exactly once per step.
        let mut serial = wide_pairs(SchedKind::Compiled, 8);
        serial.run(9).unwrap();
        assert_eq!(sim.metrics().reacts, serial.metrics().reacts);
        assert_eq!(sim.report(), serial.report());
    }

    /// A two-instance data cycle that settles: `a` drives unconditionally
    /// (breaking the cycle), `b` forwards once its input resolves.
    struct CycleDriver;
    impl Module for CycleDriver {
        fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
            ctx.send(PortId(1), 0, Value::Word(7))?;
            ctx.set_ack(PortId(0), 0, true)
        }
        fn commit(&mut self, ctx: &mut CommitCtx<'_>) -> Result<(), SimError> {
            if ctx.transferred_in(PortId(0), 0).is_some() {
                ctx.count("got", 1);
            }
            Ok(())
        }
    }
    struct CycleForward;
    impl Module for CycleForward {
        fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
            ctx.set_ack(PortId(0), 0, true)?;
            if let Res::Yes(v) = ctx.data(PortId(0), 0) {
                ctx.send(PortId(1), 0, v)?;
            }
            Ok(())
        }
        fn commit(&mut self, ctx: &mut CommitCtx<'_>) -> Result<(), SimError> {
            if ctx.transferred_in(PortId(0), 0).is_some() {
                ctx.count("fwd", 1);
            }
            Ok(())
        }
    }

    #[test]
    fn island_fixed_point_matches_under_every_scheduler() {
        let build = |sched| {
            let mut b = NetlistBuilder::new();
            let spec = |t: &str| ModuleSpec::new(t).input("in", 1, 1).output("out", 1, 1);
            let a = b.add("a", spec("cyca"), Box::new(CycleDriver)).unwrap();
            let c = b.add("c", spec("cycb"), Box::new(CycleForward)).unwrap();
            b.connect(a, "out", c, "in").unwrap();
            b.connect(c, "out", a, "in").unwrap();
            Simulator::new(b.build().unwrap(), sched)
        };
        let mut reports = Vec::new();
        for sched in ALL_SCHEDS {
            let mut sim = build(sched);
            if matches!(sched, SchedKind::Compiled | SchedKind::CompiledParallel) {
                let plan = sim.compiled_plan().unwrap();
                assert_eq!(plan.island_count(), 1, "the 2-cycle is one island");
            }
            sim.run(6).unwrap();
            assert_eq!(sim.transfer_counts(), &[6, 6], "{sched:?}");
            reports.push(sim.report());
        }
        for r in &reports[1..] {
            assert_eq!(*r, reports[0]);
        }
    }

    #[test]
    fn worklist_allocation_reaches_steady_state() {
        // Satellite guarantee: after warm-up, steps allocate nothing in
        // the worklists — capacities stop moving no matter how long the
        // run continues.
        for sched in [SchedKind::Dynamic, SchedKind::Static, SchedKind::Compiled] {
            let mut sim = wide_pairs(sched, 8);
            sim.run(4).unwrap();
            let cap = (
                sim.work.fifo.capacity(),
                sim.work.ranked.as_ref().map(|q| q.allocated_capacity()),
                sim.wake_buf.capacity(),
            );
            sim.run(64).unwrap();
            let after = (
                sim.work.fifo.capacity(),
                sim.work.ranked.as_ref().map(|q| q.allocated_capacity()),
                sim.wake_buf.capacity(),
            );
            assert_eq!(cap, after, "{sched:?}");
        }
    }

    // ----- run governance ---------------------------------------------

    fn simple_pair(sched: SchedKind) -> Simulator {
        let mut b = NetlistBuilder::new();
        let s = b
            .add(
                "s",
                ModuleSpec::new("src").output("out", 1, 1),
                Box::new(Src),
            )
            .unwrap();
        let k = b.add("k", gated_sink_spec(), Box::new(GatedSink)).unwrap();
        b.connect(s, "out", k, "in").unwrap();
        Simulator::new(b.build().unwrap(), sched)
    }

    #[test]
    fn step_budget_stops_the_run_and_reports_it() {
        let mut sim = simple_pair(SchedKind::Dynamic);
        sim.set_budget(RunBudget::default().max_steps(7));
        let report = sim.run_governed(100);
        assert_eq!(
            report.outcome,
            RunOutcome::BudgetExhausted(BudgetKind::Steps)
        );
        assert_eq!(report.steps_executed, 7);
        assert_eq!(report.steps_completed, 7);
        assert_eq!(report.steps_requested, 100);
        assert!(report.stopped_early());
        assert!(report.error.is_none());
        assert_eq!(sim.last_run_report().unwrap().outcome, report.outcome);
    }

    #[test]
    fn run_routes_through_governance_and_keeps_the_report() {
        let mut sim = simple_pair(SchedKind::Static);
        sim.set_budget(RunBudget::default().max_steps(3));
        // A budget stop is not an error: the caller inspects the report.
        sim.run(50).unwrap();
        assert_eq!(sim.metrics().steps, 3);
        let report = sim.last_run_report().unwrap();
        assert_eq!(
            report.outcome,
            RunOutcome::BudgetExhausted(BudgetKind::Steps)
        );
        // A fresh run call resets per-run accounting.
        sim.run(50).unwrap();
        assert_eq!(sim.metrics().steps, 6);
        assert_eq!(sim.last_run_report().unwrap().steps_executed, 3);
    }

    #[test]
    fn zero_deadline_exhausts_immediately() {
        let mut sim = simple_pair(SchedKind::Dynamic);
        sim.set_budget(RunBudget::default().deadline(std::time::Duration::ZERO));
        let report = sim.run_governed(1000);
        assert_eq!(
            report.outcome,
            RunOutcome::BudgetExhausted(BudgetKind::Deadline)
        );
        assert_eq!(report.steps_executed, 0);
    }

    #[test]
    fn memory_ceiling_uses_the_installed_gauge() {
        let mut sim = simple_pair(SchedKind::Dynamic);
        sim.set_budget(RunBudget::default().max_memory_bytes(1 << 20));
        sim.set_memory_gauge(|| 2 << 20);
        let report = sim.run_governed(100);
        assert_eq!(
            report.outcome,
            RunOutcome::BudgetExhausted(BudgetKind::Memory)
        );
        assert_eq!(report.memory_peak, Some(2 << 20));
        // Without a ceiling the gauge still tracks the peak.
        let mut sim = simple_pair(SchedKind::Dynamic);
        sim.set_budget(RunBudget::default().max_steps(4));
        sim.set_memory_gauge(|| 123);
        let report = sim.run_governed(100);
        assert_eq!(report.memory_peak, Some(123));
    }

    #[test]
    fn cancellation_stops_at_a_step_boundary_and_checkpoints() {
        /// Trips the shared token at the end of step `at`.
        struct CancelAt {
            at: u64,
            token: CancelToken,
        }
        impl Probe for CancelAt {
            fn step_end(&mut self, now: u64) {
                if now == self.at {
                    self.token.cancel();
                }
            }
        }
        let token = CancelToken::new();
        let mut sim = simple_pair(SchedKind::Compiled);
        sim.set_probe(Box::new(CancelAt {
            at: 4,
            token: token.clone(),
        }));
        sim.set_cancel_token(token.clone());
        let report = sim.run_governed(100);
        assert_eq!(report.outcome, RunOutcome::Cancelled);
        // Cancelled at the boundary after step 4 (steps 0..=4 ran).
        assert_eq!(report.steps_executed, 5);
        // The final checkpoint preserved the progress in memory.
        let snap = sim.last_checkpoint().expect("cancel checkpoints");
        assert_eq!(snap.now(), 5);
        // The token stays tripped until reset: the next run is a no-op.
        let report = sim.run_governed(100);
        assert_eq!(report.outcome, RunOutcome::Cancelled);
        assert_eq!(report.steps_executed, 0);
        token.reset();
    }

    #[test]
    fn quarantine_budget_caps_isolation() {
        let mut sim = simple_pair(SchedKind::Dynamic);
        sim.set_budget(RunBudget::default().max_quarantined(0));
        // No quarantines happen, so the budget never trips.
        let report = sim.run_governed(5);
        assert_eq!(report.outcome, RunOutcome::Completed);
        assert!(!report.stopped_early());
        assert!(report.quarantined.is_empty());
    }

    /// Panics (once per replay) at step `at` — an organic fault the
    /// retry ladder cannot mask away.
    struct PanicAt {
        at: u64,
    }
    impl Module for PanicAt {
        fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
            if ctx.now() == self.at {
                panic!("injected at {}", self.at);
            }
            ctx.send(PortId(0), 0, Value::Word(ctx.now()))
        }
        fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
    }

    fn panicking_pair(at: u64) -> Simulator {
        let mut b = NetlistBuilder::new();
        let p = b
            .add(
                "p",
                ModuleSpec::new("pan").output("out", 1, 1),
                Box::new(PanicAt { at }),
            )
            .unwrap();
        let k = b.add("k", gated_sink_spec(), Box::new(GatedSink)).unwrap();
        b.connect(p, "out", k, "in").unwrap();
        Simulator::new(b.build().unwrap(), SchedKind::Dynamic)
    }

    #[test]
    fn retry_ladder_ends_in_degraded_completion() {
        let mut sim = panicking_pair(3);
        sim.set_failure_policy(FailurePolicy::Quarantine);
        sim.set_retry_policy(RetryPolicy::default());
        let report = sim.run_governed(10);
        // One retry from the step-0 checkpoint, the replay panics again
        // (organic fault), the per-cause cap leaves the quarantine
        // standing and the run completes degraded.
        assert_eq!(report.outcome, RunOutcome::Degraded);
        assert!(!report.stopped_early());
        assert_eq!(report.retries.get("quarantine"), Some(&1));
        assert_eq!(report.rollbacks, 1);
        assert_eq!(report.quarantined, vec!["p".to_string()]);
        assert_eq!(report.steps_completed, 10);
        // Steps 0..=3 (the panicking step completes by quarantining),
        // then the rollback replays 0..=3, then 4..=9: 14 in total for
        // 10 of forward progress.
        assert_eq!(report.steps_executed, 14);
    }

    #[test]
    fn exhausted_retry_budget_stops_escalating() {
        let mut sim = panicking_pair(2);
        sim.set_failure_policy(FailurePolicy::Quarantine);
        sim.set_retry_policy(RetryPolicy::with_max_retries(0));
        let report = sim.run_governed(8);
        // No retries at all: the quarantine stands on first occurrence.
        assert_eq!(report.outcome, RunOutcome::Degraded);
        assert!(report.retries.is_empty());
        assert_eq!(report.rollbacks, 0);
        assert_eq!(report.steps_executed, 8);
    }

    #[test]
    fn governed_until_honours_the_predicate() {
        let mut sim = simple_pair(SchedKind::Dynamic);
        sim.set_budget(RunBudget::default().max_steps(50));
        let k = sim.instance_by_name("k").unwrap();
        let report = sim.run_governed_until(100, |s| s.counter(k, "received") >= 4);
        assert_eq!(report.outcome, RunOutcome::Completed);
        assert!(report.steps_executed >= 4 && report.steps_executed < 50);
    }

    #[test]
    fn report_renders_every_field_group() {
        let mut sim = simple_pair(SchedKind::Dynamic);
        sim.set_budget(RunBudget::default().max_steps(2));
        let report = sim.run_governed(9);
        let text = report.render();
        assert!(text.contains("budget-exhausted"), "{text}");
        assert!(text.contains("2/9 steps"), "{text}");
        assert!(text.contains("budget axis exhausted: steps"), "{text}");
    }
}
