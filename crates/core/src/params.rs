//! Algorithmic parameters (paper §2.1).
//!
//! LSE components are customized through *algorithmic parameters*:
//! parameter values that describe functionality (an arbitration policy, a
//! replacement policy, a latency). A module template inherits its overall
//! behaviour and adapts the specifics per instance through its [`Params`].

use crate::error::SimError;
use std::collections::BTreeMap;
use std::fmt;

/// One parameter value. `List` supports per-connection parameters; `Str`
/// supports policy selectors ("round_robin", "lru", ...).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ParamValue {
    /// An integer parameter (sizes, latencies, widths).
    Int(i64),
    /// A floating-point parameter (rates, probabilities, coefficients).
    Float(f64),
    /// A boolean parameter (feature switches).
    Bool(bool),
    /// A string parameter (policy and algorithm selectors).
    Str(String),
    /// A list parameter (per-port or per-connection values).
    List(Vec<ParamValue>),
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(i) => write!(f, "{i}"),
            ParamValue::Float(x) => write!(f, "{x}"),
            ParamValue::Bool(b) => write!(f, "{b}"),
            ParamValue::Str(s) => write!(f, "{s:?}"),
            ParamValue::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}
impl From<usize> for ParamValue {
    fn from(v: usize) -> Self {
        ParamValue::Int(v as i64)
    }
}
impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}
impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}
impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_owned())
    }
}
impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Str(v)
    }
}

/// A set of named parameter values customizing one module instance.
///
/// Getters come in two forms: `get_*` (error if absent) and `*_or`
/// (template-provided default if absent). Absent-with-default is the normal
/// case — the paper's templates ship usable defaults so a minimal
/// specification works out of the box.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Params {
    values: BTreeMap<String, ParamValue>,
}

impl Params {
    /// An empty parameter set (all defaults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion.
    pub fn with(mut self, key: &str, value: impl Into<ParamValue>) -> Self {
        self.values.insert(key.to_owned(), value.into());
        self
    }

    /// Insert or replace a parameter.
    pub fn set(&mut self, key: &str, value: impl Into<ParamValue>) {
        self.values.insert(key.to_owned(), value.into());
    }

    /// Raw access to a parameter value.
    pub fn get(&self, key: &str) -> Option<&ParamValue> {
        self.values.get(key)
    }

    /// True if the parameter is present.
    pub fn contains(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// Iterate over all `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of explicitly set parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no parameters are explicitly set.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// An integer parameter, with a default.
    pub fn int_or(&self, key: &str, default: i64) -> Result<i64, SimError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(ParamValue::Int(i)) => Ok(*i),
            Some(other) => Err(SimError::param(format!(
                "parameter {key:?}: expected int, got {other}"
            ))),
        }
    }

    /// A non-negative integer parameter as `usize`, with a default.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, SimError> {
        let v = self.int_or(key, default as i64)?;
        usize::try_from(v).map_err(|_| {
            SimError::param(format!("parameter {key:?}: expected non-negative, got {v}"))
        })
    }

    /// A float parameter, with a default. Integer values are widened.
    pub fn float_or(&self, key: &str, default: f64) -> Result<f64, SimError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(ParamValue::Float(f)) => Ok(*f),
            Some(ParamValue::Int(i)) => Ok(*i as f64),
            Some(other) => Err(SimError::param(format!(
                "parameter {key:?}: expected float, got {other}"
            ))),
        }
    }

    /// A boolean parameter, with a default.
    pub fn bool_or(&self, key: &str, default: bool) -> Result<bool, SimError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(ParamValue::Bool(b)) => Ok(*b),
            Some(other) => Err(SimError::param(format!(
                "parameter {key:?}: expected bool, got {other}"
            ))),
        }
    }

    /// A string parameter, with a default.
    pub fn str_or(&self, key: &str, default: &str) -> Result<String, SimError> {
        match self.values.get(key) {
            None => Ok(default.to_owned()),
            Some(ParamValue::Str(s)) => Ok(s.clone()),
            Some(other) => Err(SimError::param(format!(
                "parameter {key:?}: expected string, got {other}"
            ))),
        }
    }

    /// A list parameter; absent means empty.
    pub fn list_or_empty(&self, key: &str) -> Result<&[ParamValue], SimError> {
        match self.values.get(key) {
            None => Ok(&[]),
            Some(ParamValue::List(l)) => Ok(l),
            Some(other) => Err(SimError::param(format!(
                "parameter {key:?}: expected list, got {other}"
            ))),
        }
    }

    /// A required integer parameter.
    pub fn require_int(&self, key: &str) -> Result<i64, SimError> {
        match self.values.get(key) {
            Some(ParamValue::Int(i)) => Ok(*i),
            Some(other) => Err(SimError::param(format!(
                "parameter {key:?}: expected int, got {other}"
            ))),
            None => Err(SimError::param(format!(
                "missing required parameter {key:?}"
            ))),
        }
    }

    /// A required string parameter.
    pub fn require_str(&self, key: &str) -> Result<String, SimError> {
        match self.values.get(key) {
            Some(ParamValue::Str(s)) => Ok(s.clone()),
            Some(other) => Err(SimError::param(format!(
                "parameter {key:?}: expected string, got {other}"
            ))),
            None => Err(SimError::param(format!(
                "missing required parameter {key:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_when_absent() {
        let p = Params::new();
        assert_eq!(p.int_or("depth", 8).unwrap(), 8);
        assert!(p.bool_or("bypass", true).unwrap());
        assert_eq!(p.str_or("policy", "round_robin").unwrap(), "round_robin");
        assert_eq!(p.float_or("rate", 0.5).unwrap(), 0.5);
        assert!(p.list_or_empty("weights").unwrap().is_empty());
    }

    #[test]
    fn explicit_values_override_defaults() {
        let p = Params::new()
            .with("depth", 32i64)
            .with("policy", "lru")
            .with("bypass", false)
            .with("rate", 0.25);
        assert_eq!(p.int_or("depth", 8).unwrap(), 32);
        assert_eq!(p.str_or("policy", "rr").unwrap(), "lru");
        assert!(!p.bool_or("bypass", true).unwrap());
        assert_eq!(p.float_or("rate", 0.5).unwrap(), 0.25);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let p = Params::new().with("depth", "oops");
        assert!(p.int_or("depth", 8).is_err());
        assert!(p.usize_or("depth", 8).is_err());
        let p2 = Params::new().with("flag", 1i64);
        assert!(p2.bool_or("flag", false).is_err());
    }

    #[test]
    fn int_widens_to_float() {
        let p = Params::new().with("rate", 2i64);
        assert_eq!(p.float_or("rate", 0.0).unwrap(), 2.0);
    }

    #[test]
    fn negative_usize_rejected() {
        let p = Params::new().with("depth", -1i64);
        assert!(p.usize_or("depth", 1).is_err());
    }

    #[test]
    fn required_parameters() {
        let p = Params::new().with("name", "x");
        assert_eq!(p.require_str("name").unwrap(), "x");
        assert!(p.require_int("missing").is_err());
        assert!(p.require_str("missing").is_err());
    }

    #[test]
    fn list_parameters() {
        let p = Params::new().with(
            "weights",
            ParamValue::List(vec![ParamValue::Int(1), ParamValue::Int(2)]),
        );
        assert_eq!(p.list_or_empty("weights").unwrap().len(), 2);
    }

    #[test]
    fn display_roundtrip_shapes() {
        let v = ParamValue::List(vec![ParamValue::Int(1), ParamValue::Str("a".into())]);
        assert_eq!(v.to_string(), "[1, \"a\"]");
    }
}
