//! The immutable structure of a constructed simulator.
//!
//! Everything that never changes after `Netlist::build` lives here, in
//! forms chosen for the kernel's hot loops:
//!
//! * instance metadata (name + customized template spec) with the
//!   per-instance **port→edge slab** flattened into one `Vec<EdgeId>` per
//!   instance (indexed through a small offsets table) instead of a
//!   `Vec<Vec<EdgeId>>` of tiny heap allocations;
//! * connection metadata ([`EdgeMeta`], indexed by [`EdgeId`]);
//! * **CSR wake tables** — for each of the three wire kinds, a
//!   `(offsets, readers)` pair mapping `EdgeId → [InstanceId]`: the
//!   instances whose `react` handler must re-run when that wire of that
//!   edge newly resolves. Data and enable flow to the receiver; ack flows
//!   back to the sender only when the sender declared
//!   `reads_ack_in_react` (otherwise its `commit` sees the final value
//!   anyway and no reactive wake is needed);
//! * the static schedule's instance ranks, computed lazily and cached, so
//!   one `Arc<Topology>` shared by several simulators analyzes the
//!   netlist once.
//!
//! A [`Topology`] is scheduler-agnostic and holds no per-timestep state;
//! the signal valuation lives in [`crate::store::SignalStore`] and the
//! execution policy in [`crate::exec::Simulator`].

use crate::compile::CompiledPlan;
use crate::module::{Dir, ModuleSpec, PortId};
use crate::netlist::{EdgeId, EdgeMeta, InstanceId, InstanceMeta};
use crate::signal::Wire;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// Immutable per-instance metadata with the flattened port→edge slab.
#[derive(Debug)]
pub struct InstanceInfo {
    /// Hierarchical instance name (dotted path after elaboration).
    pub name: String,
    /// The instance's customized template spec.
    pub spec: ModuleSpec,
    /// `port_edges[port_offsets[p] .. port_offsets[p+1]]` are port `p`'s
    /// edges in connection-index order.
    port_offsets: Vec<u32>,
    port_edges: Vec<EdgeId>,
    /// Port directions, flattened out of the spec's `PortSpec` array so
    /// the per-drive direction check is a single dense load instead of a
    /// walk through the (string-bearing, ~40-byte stride) spec entries.
    port_dirs: Vec<Dir>,
}

impl InstanceInfo {
    fn from_meta(meta: InstanceMeta) -> Self {
        let mut port_offsets = Vec::with_capacity(meta.edges.len() + 1);
        let mut port_edges = Vec::new();
        port_offsets.push(0);
        for port in &meta.edges {
            port_edges.extend_from_slice(port);
            port_offsets.push(port_edges.len() as u32);
        }
        let port_dirs = meta.spec.ports.iter().map(|p| p.dir).collect();
        InstanceInfo {
            name: meta.name,
            spec: meta.spec,
            port_offsets,
            port_edges,
            port_dirs,
        }
    }

    /// The edges attached to a port, in connection-index order.
    #[inline]
    pub fn port_edges(&self, port: PortId) -> &[EdgeId] {
        let p = port.0 as usize;
        &self.port_edges[self.port_offsets[p] as usize..self.port_offsets[p + 1] as usize]
    }

    /// Number of connections attached to a port.
    #[inline]
    pub fn width(&self, port: PortId) -> usize {
        self.port_edges(port).len()
    }

    /// The edge on a connection slot of a port, if connected.
    #[inline]
    pub fn edge(&self, port: PortId, index: usize) -> Option<EdgeId> {
        self.port_edges(port).get(index).copied()
    }

    /// The direction of a port (dense lookup; panics on a bad id, like
    /// [`ModuleSpec::port_spec`]).
    #[inline]
    pub fn port_dir(&self, port: PortId) -> Dir {
        self.port_dirs[port.0 as usize]
    }
}

/// Hot per-port metadata, packed into one topology-global dense slab
/// (see [`Topology::hot_ports`]): the fields every `ReactCtx` drive or
/// read needs, without chasing the per-instance `InstanceInfo` heap
/// vectors. For a whole netlist this fits in a few KB of contiguous
/// memory, where the scattered `InstanceInfo` path touches several cache
/// lines per instance.
#[derive(Clone, Copy, Debug)]
pub struct PortMeta {
    /// First edge of this port in [`Topology::edges_flat`].
    pub off: u32,
    /// Number of connections on this port.
    pub len: u32,
    /// Port direction.
    pub dir: Dir,
}

/// One compressed-sparse-row adjacency: `readers(e)` is the slice of
/// instance ids between consecutive offsets.
#[derive(Debug, Default)]
struct Csr {
    offsets: Vec<u32>,
    readers: Vec<u32>,
}

impl Csr {
    /// Build from (edge, reader) pairs; `pairs` may arrive in any order.
    fn build(n_edges: usize, pairs: &[(u32, u32)]) -> Self {
        let mut counts = vec![0u32; n_edges + 1];
        for &(e, _) in pairs {
            counts[e as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursors = counts;
        let mut readers = vec![0u32; pairs.len()];
        for &(e, r) in pairs {
            readers[cursors[e as usize] as usize] = r;
            cursors[e as usize] += 1;
        }
        Csr { offsets, readers }
    }

    #[inline]
    fn readers(&self, e: EdgeId) -> &[u32] {
        let i = e.0 as usize;
        &self.readers[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// The immutable composition structure shared by all schedulers.
///
/// Built once from a validated [`crate::netlist::Netlist`] (via
/// [`crate::netlist::Netlist::into_parts`]); wrap it in an `Arc` to share
/// between simulators — the cached static-schedule ranks are then
/// computed once.
#[derive(Debug)]
pub struct Topology {
    insts: Vec<InstanceInfo>,
    edges: Vec<EdgeMeta>,
    wake_data: Csr,
    wake_enable: Csr,
    wake_ack: Csr,
    /// Per instance: true when the template opted into activity-gated
    /// commit via [`ModuleSpec::commit_only_when_active`].
    commit_gated: Vec<bool>,
    /// Per instance: true when the template declared its commit a no-op
    /// via [`crate::module::ModuleSpec::no_commit`].
    commit_noop: Vec<bool>,
    /// True when at least one instance is activity-gated — lets the
    /// commit phase skip per-transfer endpoint marking entirely when
    /// nobody consumes it.
    any_commit_gated: bool,
    /// True when *every* template declared `no_commit` — the commit
    /// phase then skips its instance sweep outright.
    all_commit_noop: bool,
    /// Dense hot-path port metadata: instance `i`'s ports are
    /// `ports_flat[inst_port_base[i] .. inst_port_base[i+1]]`, and each
    /// entry's `off`/`len` index [`Topology::edges_flat`].
    ports_flat: Vec<PortMeta>,
    inst_port_base: Vec<u32>,
    edges_flat: Vec<EdgeId>,
    ranks: OnceLock<Vec<u32>>,
    plan: OnceLock<Arc<CompiledPlan>>,
}

impl Topology {
    /// Flatten validated netlist parts into kernel form.
    pub fn new(instances: Vec<InstanceMeta>, edges: Vec<EdgeMeta>) -> Self {
        let n_edges = edges.len();
        let mut data_pairs = Vec::with_capacity(n_edges);
        let mut ack_pairs = Vec::new();
        for (i, em) in edges.iter().enumerate() {
            data_pairs.push((i as u32, em.dst.inst.0));
            if instances[em.src.inst.0 as usize].spec.reads_ack_in_react {
                ack_pairs.push((i as u32, em.src.inst.0));
            }
        }
        let wake_data = Csr::build(n_edges, &data_pairs);
        let wake_enable = Csr::build(n_edges, &data_pairs);
        let wake_ack = Csr::build(n_edges, &ack_pairs);
        let commit_gated: Vec<bool> = instances
            .iter()
            .map(|m| m.spec.commit_only_when_active)
            .collect();
        let commit_noop: Vec<bool> = instances.iter().map(|m| m.spec.commit_is_noop).collect();
        let any_commit_gated = commit_gated.iter().any(|&g| g);
        let all_commit_noop = commit_noop.iter().all(|&g| g);
        let insts: Vec<InstanceInfo> = instances.into_iter().map(InstanceInfo::from_meta).collect();
        let mut ports_flat = Vec::new();
        let mut inst_port_base = Vec::with_capacity(insts.len() + 1);
        let mut edges_flat = Vec::new();
        inst_port_base.push(0);
        for info in &insts {
            for (p, spec) in info.spec.ports.iter().enumerate() {
                let es = info.port_edges(PortId(p as u16));
                ports_flat.push(PortMeta {
                    off: edges_flat.len() as u32,
                    len: es.len() as u32,
                    dir: spec.dir,
                });
                edges_flat.extend_from_slice(es);
            }
            inst_port_base.push(ports_flat.len() as u32);
        }
        Topology {
            insts,
            edges,
            wake_data,
            wake_enable,
            wake_ack,
            commit_gated,
            commit_noop,
            any_commit_gated,
            all_commit_noop,
            ports_flat,
            inst_port_base,
            edges_flat,
            ranks: OnceLock::new(),
            plan: OnceLock::new(),
        }
    }

    /// Number of instances.
    pub fn instance_count(&self) -> usize {
        self.insts.len()
    }

    /// Number of connections.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Immutable metadata of one instance.
    #[inline]
    pub fn instance(&self, inst: InstanceId) -> &InstanceInfo {
        &self.insts[inst.0 as usize]
    }

    /// The dense hot-path port table of one instance (entries index
    /// [`Topology::edges_flat`]).
    #[inline]
    pub fn hot_ports(&self, inst: InstanceId) -> &[PortMeta] {
        let i = inst.0 as usize;
        &self.ports_flat[self.inst_port_base[i] as usize..self.inst_port_base[i + 1] as usize]
    }

    /// The topology-global flattened port→edge slab that
    /// [`Topology::hot_ports`] entries index into.
    #[inline]
    pub fn edges_flat(&self) -> &[EdgeId] {
        &self.edges_flat
    }

    /// Static metadata of one connection.
    #[inline]
    pub fn edge_meta(&self, e: EdgeId) -> &EdgeMeta {
        &self.edges[e.0 as usize]
    }

    /// All connection metas, indexed by [`EdgeId`].
    pub fn edge_metas(&self) -> &[EdgeMeta] {
        &self.edges
    }

    /// The instances whose `react` must re-run when `wire` of edge `e`
    /// newly resolves (a CSR reader-list lookup; no allocation).
    #[inline]
    pub fn readers(&self, wire: Wire, e: EdgeId) -> &[u32] {
        match wire {
            Wire::Data => self.wake_data.readers(e),
            Wire::Enable => self.wake_enable.readers(e),
            Wire::Ack => self.wake_ack.readers(e),
        }
    }

    /// True when the instance's template opted into activity-gated commit.
    #[inline]
    pub fn commit_gated(&self, inst: usize) -> bool {
        self.commit_gated[inst]
    }

    /// True when the instance's template declared its commit a no-op.
    #[inline]
    pub fn commit_noop(&self, inst: usize) -> bool {
        self.commit_noop[inst]
    }

    /// True when any instance is activity-gated (the commit phase only
    /// needs per-transfer endpoint marking in that case).
    #[inline]
    pub fn any_commit_gated(&self) -> bool {
        self.any_commit_gated
    }

    /// True when every template declared its commit a no-op.
    #[inline]
    pub fn all_commit_noop(&self) -> bool {
        self.all_commit_noop
    }

    /// Instance name by id.
    #[inline]
    pub fn name(&self, inst: InstanceId) -> &str {
        &self.insts[inst.0 as usize].name
    }

    /// Look up an instance id by name.
    pub fn instance_by_name(&self, name: &str) -> Option<InstanceId> {
        self.insts
            .iter()
            .position(|m| m.name == name)
            .map(|i| InstanceId(i as u32))
    }

    /// Instance names in id order.
    pub fn instance_names(&self) -> impl Iterator<Item = &str> {
        self.insts.iter().map(|m| m.name.as_str())
    }

    /// How many instances of each template the netlist contains — the
    /// ground truth for the reuse census (experiment E6).
    pub fn template_census(&self) -> BTreeMap<String, usize> {
        let mut census = BTreeMap::new();
        for m in &self.insts {
            *census.entry(m.spec.template.clone()).or_insert(0) += 1;
        }
        census
    }

    /// The static schedule's instance ranks (paper ref [22]); computed on
    /// first use and cached for the lifetime of the topology.
    pub fn ranks(&self) -> &[u32] {
        self.ranks.get_or_init(|| crate::sched::compute_ranks(self))
    }

    /// The compiled static schedule (SCC-condensed invocation plan, paper
    /// ref [22]); compiled on first use and cached for the lifetime of
    /// the topology, so every simulator sharing one `Arc<Topology>` runs
    /// the same plan without re-analysis.
    pub fn plan(&self) -> &Arc<CompiledPlan> {
        self.plan
            .get_or_init(|| Arc::new(CompiledPlan::compile(self)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;
    use crate::exec::{CommitCtx, ReactCtx};
    use crate::module::Module;
    use crate::netlist::NetlistBuilder;

    struct Nop;
    impl Module for Nop {
        fn react(&mut self, _: &mut ReactCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
        fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
    }

    fn two_stage() -> Topology {
        let mut b = NetlistBuilder::new();
        let s = b
            .add(
                "s",
                ModuleSpec::new("src").output("out", 0, u32::MAX),
                Box::new(Nop),
            )
            .unwrap();
        let k = b
            .add(
                "k",
                ModuleSpec::new("snk").input("in", 0, u32::MAX),
                Box::new(Nop),
            )
            .unwrap();
        b.connect(s, "out", k, "in").unwrap();
        b.connect(s, "out", k, "in").unwrap();
        let (topo, _mods) = b.build().unwrap().into_parts();
        topo
    }

    #[test]
    fn port_slabs_match_connection_order() {
        let topo = two_stage();
        let s = topo.instance(InstanceId(0));
        assert_eq!(s.width(PortId(0)), 2);
        assert_eq!(s.edge(PortId(0), 0), Some(EdgeId(0)));
        assert_eq!(s.edge(PortId(0), 1), Some(EdgeId(1)));
        assert_eq!(s.edge(PortId(0), 2), None);
        assert_eq!(s.port_edges(PortId(0)), &[EdgeId(0), EdgeId(1)]);
    }

    #[test]
    fn data_and_enable_wake_the_receiver() {
        let topo = two_stage();
        assert_eq!(topo.readers(Wire::Data, EdgeId(0)), &[1]);
        assert_eq!(topo.readers(Wire::Enable, EdgeId(1)), &[1]);
    }

    #[test]
    fn ack_wakes_nobody_without_declaration() {
        let topo = two_stage();
        assert!(topo.readers(Wire::Ack, EdgeId(0)).is_empty());
        assert!(topo.readers(Wire::Ack, EdgeId(1)).is_empty());
    }

    #[test]
    fn ack_wakes_declared_sender() {
        let mut b = NetlistBuilder::new();
        let s = b
            .add(
                "s",
                ModuleSpec::new("src")
                    .output("out", 0, 1)
                    .with_ack_in_react(),
                Box::new(Nop),
            )
            .unwrap();
        let k = b
            .add("k", ModuleSpec::new("snk").input("in", 0, 1), Box::new(Nop))
            .unwrap();
        b.connect(s, "out", k, "in").unwrap();
        let (topo, _) = b.build().unwrap().into_parts();
        assert_eq!(topo.readers(Wire::Ack, EdgeId(0)), &[0]);
    }

    #[test]
    fn gating_flag_tracks_spec() {
        let mut b = NetlistBuilder::new();
        b.add(
            "a",
            ModuleSpec::new("t").commit_only_when_active(),
            Box::new(Nop),
        )
        .unwrap();
        b.add("b", ModuleSpec::new("t"), Box::new(Nop)).unwrap();
        let (topo, _) = b.build().unwrap().into_parts();
        assert!(topo.commit_gated(0));
        assert!(!topo.commit_gated(1));
    }

    #[test]
    fn ranks_are_cached_and_topological() {
        let topo = two_stage();
        let r1 = topo.ranks().as_ptr();
        let r2 = topo.ranks().as_ptr();
        assert_eq!(r1, r2, "ranks computed once");
        assert!(topo.ranks()[0] < topo.ranks()[1], "sender before receiver");
    }

    #[test]
    fn census_and_lookup() {
        let topo = two_stage();
        assert_eq!(topo.template_census()["src"], 1);
        assert_eq!(topo.instance_by_name("k"), Some(InstanceId(1)));
        assert_eq!(topo.instance_names().collect::<Vec<_>>(), vec!["s", "k"]);
    }
}
