//! Per-module wall-clock profiler built on the [`Probe`] event stream.
//!
//! The react/commit enter/exit hooks bracket every handler invocation, so
//! attributing time to instances needs no support from the modules
//! themselves — attach [`Profiler::new`]'s probe, run, and ask the handle
//! for a hot-spot table:
//!
//! ```text
//! instance              react ms  (calls)   commit ms  (calls)   total ms     %
//! core.fetch              12.41   (100000)      3.02   (100000)     15.43  41.2
//! ...
//! ```
//!
//! Timing uses `std::time::Instant` around each handler; the enter
//! timestamp is kept locally in the probe (no lock), and the shared
//! accumulator lock is taken once per exit event. That cost is paid only
//! when the profiler is attached — see `docs/OBSERVABILITY.md` for
//! measured overhead.

use crate::netlist::InstanceId;
use crate::probe::Probe;
use crate::topology::Topology;
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Clone, Default)]
struct InstProfile {
    name: String,
    react_ns: u64,
    reacts: u64,
    commit_ns: u64,
    commits: u64,
}

#[derive(Default)]
struct ProfileData {
    insts: Vec<InstProfile>,
}

/// Probe half of the profiler; see [`Profiler::new`].
pub struct ProfileProbe {
    data: Arc<Mutex<ProfileData>>,
    /// In-flight enter timestamps, indexed by instance (handlers never
    /// nest for one instance within a phase, so one slot each suffices).
    react_t0: Vec<Option<Instant>>,
    commit_t0: Vec<Option<Instant>>,
}

/// Read handle; ask for a [`ProfileReport`] after (or during) a run.
#[derive(Clone)]
pub struct ProfileHandle {
    data: Arc<Mutex<ProfileData>>,
}

/// Namespace for constructing the probe/handle pair.
pub struct Profiler;

impl Profiler {
    /// Create a profiling probe and the handle that reads its report.
    #[allow(clippy::new_ret_no_self)] // `Profiler` is a factory namespace, not a type
    pub fn new() -> (ProfileProbe, ProfileHandle) {
        let data = Arc::new(Mutex::new(ProfileData::default()));
        (
            ProfileProbe {
                data: data.clone(),
                react_t0: Vec::new(),
                commit_t0: Vec::new(),
            },
            ProfileHandle { data },
        )
    }
}

/// One row of the hot-spot table.
#[derive(Clone, Debug)]
pub struct ProfileRow {
    /// Instance name.
    pub name: String,
    /// Nanoseconds spent in `react`.
    pub react_ns: u64,
    /// `react` invocations.
    pub reacts: u64,
    /// Nanoseconds spent in `commit`.
    pub commit_ns: u64,
    /// `commit` invocations.
    pub commits: u64,
}

impl ProfileRow {
    /// Total handler nanoseconds for this instance.
    pub fn total_ns(&self) -> u64 {
        self.react_ns + self.commit_ns
    }
}

/// Snapshot of accumulated per-instance handler time, hottest first.
#[derive(Clone, Debug, Default)]
pub struct ProfileReport {
    /// Rows sorted by descending total handler time.
    pub rows: Vec<ProfileRow>,
}

impl ProfileReport {
    /// Sum of handler time across all instances.
    pub fn total_ns(&self) -> u64 {
        self.rows.iter().map(ProfileRow::total_ns).sum()
    }

    /// The hot-spot table as printable text. `top` limits the row count
    /// (0 = all rows).
    pub fn render_table(&self, top: usize) -> String {
        let total = self.total_ns().max(1) as f64;
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>10} {:>9} {:>10} {:>9} {:>10} {:>6}\n",
            "instance", "react ms", "(calls)", "commit ms", "(calls)", "total ms", "%"
        ));
        let n = if top == 0 {
            self.rows.len()
        } else {
            top.min(self.rows.len())
        };
        for r in &self.rows[..n] {
            out.push_str(&format!(
                "{:<28} {:>10.3} {:>9} {:>10.3} {:>9} {:>10.3} {:>6.1}\n",
                r.name,
                r.react_ns as f64 / 1e6,
                r.reacts,
                r.commit_ns as f64 / 1e6,
                r.commits,
                r.total_ns() as f64 / 1e6,
                100.0 * r.total_ns() as f64 / total,
            ));
        }
        if n < self.rows.len() {
            out.push_str(&format!("... {} more instances\n", self.rows.len() - n));
        }
        out
    }
}

impl ProfileHandle {
    /// Snapshot the accumulated profile, hottest instance first.
    pub fn report(&self) -> ProfileReport {
        let data = self.data.lock().expect("profile lock");
        let mut rows: Vec<ProfileRow> = data
            .insts
            .iter()
            .filter(|p| p.reacts + p.commits > 0)
            .map(|p| ProfileRow {
                name: p.name.clone(),
                react_ns: p.react_ns,
                reacts: p.reacts,
                commit_ns: p.commit_ns,
                commits: p.commits,
            })
            .collect();
        rows.sort_by(|a, b| b.total_ns().cmp(&a.total_ns()).then(a.name.cmp(&b.name)));
        ProfileReport { rows }
    }
}

impl Probe for ProfileProbe {
    fn attach(&mut self, topo: &Topology) {
        let n = topo.instance_count();
        self.react_t0 = vec![None; n];
        self.commit_t0 = vec![None; n];
        let mut data = self.data.lock().expect("profile lock");
        data.insts = (0..n)
            .map(|i| InstProfile {
                name: topo.name(InstanceId(i as u32)).to_string(),
                ..InstProfile::default()
            })
            .collect();
    }

    fn react_enter(&mut self, _now: u64, inst: InstanceId) {
        self.react_t0[inst.0 as usize] = Some(Instant::now());
    }

    fn react_exit(&mut self, _now: u64, inst: InstanceId) {
        if let Some(t0) = self.react_t0[inst.0 as usize].take() {
            let ns = t0.elapsed().as_nanos() as u64;
            let mut data = self.data.lock().expect("profile lock");
            let p = &mut data.insts[inst.0 as usize];
            p.react_ns += ns;
            p.reacts += 1;
        }
    }

    fn commit_enter(&mut self, _now: u64, inst: InstanceId) {
        self.commit_t0[inst.0 as usize] = Some(Instant::now());
    }

    fn commit_exit(&mut self, _now: u64, inst: InstanceId) {
        if let Some(t0) = self.commit_t0[inst.0 as usize].take() {
            let ns = t0.elapsed().as_nanos() as u64;
            let mut data = self.data.lock().expect("profile lock");
            let p = &mut data.insts[inst.0 as usize];
            p.commit_ns += ns;
            p.commits += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;
    use crate::exec::{CommitCtx, ReactCtx, SchedKind, Simulator};
    use crate::module::{Module, ModuleSpec, PortId};
    use crate::netlist::NetlistBuilder;
    use crate::value::Value;

    struct Busy(u32);
    impl Module for Busy {
        fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
            // Burn a deterministic amount of work so the row is non-zero.
            let mut acc = self.0 as u64;
            for i in 0..2000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            ctx.send(PortId(0), 0, Value::Word(acc))
        }
        fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
    }
    struct Snk;
    impl Module for Snk {
        fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
            ctx.set_ack(PortId(0), 0, true)
        }
        fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
    }

    #[test]
    fn profiler_attributes_time_and_sorts_rows() {
        let mut b = NetlistBuilder::new();
        let s = b
            .add(
                "busy",
                ModuleSpec::new("busy").output("out", 1, 1),
                Box::new(Busy(7)),
            )
            .unwrap();
        let k = b
            .add(
                "snk",
                ModuleSpec::new("snk").input("in", 1, 1),
                Box::new(Snk),
            )
            .unwrap();
        b.connect(s, "out", k, "in").unwrap();
        let mut sim = Simulator::new(b.build().unwrap(), SchedKind::Sweep);
        let (probe, handle) = Profiler::new();
        sim.set_probe(Box::new(probe));
        sim.run(50).unwrap();

        let report = handle.report();
        assert_eq!(report.rows.len(), 2);
        // Sweep re-sweeps to quiescence, so each step costs >=1 react.
        assert!(report.rows[0].reacts >= 50, "{}", report.rows[0].reacts);
        assert!(report.rows.iter().any(|r| r.name == "busy"));
        assert!(report.total_ns() > 0);
        // Rows are sorted hottest-first.
        assert!(report.rows[0].total_ns() >= report.rows[1].total_ns());

        let table = report.render_table(0);
        assert!(table.contains("instance"), "{table}");
        assert!(table.contains("busy"), "{table}");
        let limited = report.render_table(1);
        assert!(limited.contains("... 1 more instances"), "{limited}");
    }

    #[test]
    fn unexercised_instances_are_omitted() {
        let report = ProfileReport::default();
        assert_eq!(report.total_ns(), 0);
        assert!(report.render_table(5).contains("instance"));
    }
}
