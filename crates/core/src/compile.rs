//! The schedule compiler: SCC-condensed execution plans (paper ref [22]
//! taken to its conclusion).
//!
//! The dynamic schedulers discover the reaction-phase fixed point with a
//! worklist: seed every instance, wake the CSR readers of each newly
//! resolved wire, repeat until quiescent. Because LSE fixes a single
//! reactive model of computation, that discovery can instead happen once,
//! at construction time. The compiler condenses the instance dependency
//! graph (data/enable order sender before receiver; ack orders receiver
//! before sender only for declared reactive ack readers) into strongly
//! connected components, topologically orders the condensation, and emits
//! a [`CompiledPlan`]:
//!
//! * a **straight node** for every acyclic instance — at run time it
//!   reacts exactly once per step, with no worklist, no wake-table
//!   probing, and its wakes dropped (every reader is a strictly later
//!   plan node and will see the final wire values when its turn comes);
//! * an **island node** for every cyclic SCC (including singletons with a
//!   self-connection) — at run time its members run a bounded local
//!   fixed-point iteration, reusing the worklist/wake machinery but with
//!   wakes filtered to island members, and reusing the watchdog /
//!   oscillation diagnostics when a cyclically inconsistent island fails
//!   to converge.
//!
//! Nodes are additionally grouped into **levels** (equal topological
//! rank). No dependency edge connects two nodes of the same level, which
//! is the independence argument the parallel scheduler builds on: every
//! wire has one writing endpoint per side, and both endpoints of an edge
//! sit either in the same island or in strictly different levels, so
//! same-level nodes never write the same slot and never read a slot
//! another same-level node writes. Within a level, straight nodes come
//! first (in ascending instance id), then islands — a fixed order that
//! defines the serial plan and the deterministic commit order of the
//! parallel scheduler's write shards.
//!
//! **Correctness.** Module handlers are monotone and the per-step fixed
//! point is unique (paper §2.1), so invoking an acyclic instance once —
//! after all of its producers have fully settled — drives exactly the
//! wires the dynamic fixed point would. Islands see final external inputs
//! for the same reason, and their internal iteration is the ordinary
//! worklist algorithm restricted to the SCC. The compiled schedulers
//! therefore complete the same transfers, resolve the same defaults, and
//! commit the same instances as the dynamic ones; only handler
//! re-invocation counts differ.

use crate::sched;
use crate::topology::Topology;

/// Marker in [`CompiledPlan::island_of`] for instances outside any island.
pub const NO_ISLAND: u32 = u32::MAX;

/// One entry of the compiled invocation sequence.
#[derive(Debug)]
pub enum PlanNode {
    /// An acyclic instance: react exactly once per step.
    Straight(u32),
    /// A cyclic SCC: run members to a bounded local fixed point.
    Island {
        /// Ordinal of this island (dense, plan order).
        island: u32,
        /// Member instance ids, ascending.
        members: Vec<u32>,
    },
}

/// One topological level of the plan: a range of `nodes` with equal rank.
/// `nodes[start..straight_end]` are [`PlanNode::Straight`] in ascending
/// instance id; `nodes[straight_end..end]` are islands.
#[derive(Clone, Copy, Debug)]
pub struct PlanLevel {
    /// First node of the level.
    pub start: u32,
    /// End of the straight-node prefix.
    pub straight_end: u32,
    /// End of the level (exclusive).
    pub end: u32,
}

/// The compiled static schedule: SCC condensation nodes in topological
/// order, grouped into levels. Built once per [`Topology`] (see
/// [`Topology::plan`], which caches it) and shared by every simulator
/// running a compiled scheduler over that topology.
#[derive(Debug)]
pub struct CompiledPlan {
    nodes: Vec<PlanNode>,
    levels: Vec<PlanLevel>,
    /// Per instance: ordinal of its island, or [`NO_ISLAND`].
    island_of: Vec<u32>,
    n_islands: u32,
    /// The straight nodes' instance ids, plan order — the dense form the
    /// fully-acyclic serial fast path iterates (no per-node enum match).
    straights: Vec<u32>,
}

impl CompiledPlan {
    /// Compile the plan for a topology.
    pub fn compile(topo: &Topology) -> CompiledPlan {
        let n = topo.instance_count();
        let g = sched::dep_graph(topo);
        let comp = sched::tarjan_scc(&g.adj);
        let n_comp = comp.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
        let cranks = sched::condensation_ranks(&g.adj, &comp, n_comp);

        // Members per component, ascending by construction.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_comp];
        for (i, &c) in comp.iter().enumerate() {
            members[c as usize].push(i as u32);
        }

        // Plan order: by (rank, straight-before-island, first member id).
        struct Entry {
            rank: u32,
            cyclic: bool,
            first: u32,
            comp: usize,
        }
        let mut entries: Vec<Entry> = (0..n_comp)
            .map(|c| {
                let m = &members[c];
                Entry {
                    rank: cranks[c],
                    cyclic: m.len() > 1 || g.self_loop[m[0] as usize],
                    first: m[0],
                    comp: c,
                }
            })
            .collect();
        entries.sort_by_key(|e| (e.rank, e.cyclic, e.first));

        let mut nodes = Vec::with_capacity(n_comp);
        let mut levels: Vec<PlanLevel> = Vec::new();
        let mut island_of = vec![NO_ISLAND; n];
        let mut n_islands = 0u32;
        let mut cur_rank = None;
        for e in entries {
            if cur_rank != Some(e.rank) {
                cur_rank = Some(e.rank);
                let at = nodes.len() as u32;
                levels.push(PlanLevel {
                    start: at,
                    straight_end: at,
                    end: at,
                });
            }
            let level = levels.last_mut().expect("level opened above");
            if e.cyclic {
                let island = n_islands;
                n_islands += 1;
                let m = std::mem::take(&mut members[e.comp]);
                for &i in &m {
                    island_of[i as usize] = island;
                }
                nodes.push(PlanNode::Island { island, members: m });
            } else {
                debug_assert_eq!(level.straight_end, nodes.len() as u32, "straights first");
                nodes.push(PlanNode::Straight(e.first));
                level.straight_end += 1;
            }
            level.end = nodes.len() as u32;
        }
        let straights = nodes
            .iter()
            .filter_map(|n| match n {
                &PlanNode::Straight(i) => Some(i),
                PlanNode::Island { .. } => None,
            })
            .collect();
        CompiledPlan {
            nodes,
            levels,
            island_of,
            n_islands,
            straights,
        }
    }

    /// The full invocation sequence, topological order.
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// The level structure (ranges over [`CompiledPlan::nodes`]).
    pub fn levels(&self) -> &[PlanLevel] {
        &self.levels
    }

    /// The island ordinal of an instance, or [`NO_ISLAND`].
    #[inline]
    pub fn island_of(&self, inst: u32) -> u32 {
        self.island_of[inst as usize]
    }

    /// Number of islands (cyclic SCCs, including self-connected
    /// singletons).
    pub fn island_count(&self) -> usize {
        self.n_islands as usize
    }

    /// Number of straight (acyclic) nodes.
    pub fn straight_count(&self) -> usize {
        self.straights.len()
    }

    /// The straight nodes' instance ids in plan order (dense; for the
    /// fully-acyclic fast path).
    #[inline]
    pub fn straight_ids(&self) -> &[u32] {
        &self.straights
    }

    /// Number of instances the plan covers.
    pub fn instance_count(&self) -> usize {
        self.island_of.len()
    }

    /// True when the whole netlist is acyclic: pure straight-line
    /// execution, no fixed-point iteration anywhere.
    pub fn is_fully_acyclic(&self) -> bool {
        self.n_islands == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;
    use crate::exec::{CommitCtx, ReactCtx};
    use crate::module::{Module, ModuleSpec};
    use crate::netlist::NetlistBuilder;

    struct Nop;
    impl Module for Nop {
        fn react(&mut self, _: &mut ReactCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
        fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
    }

    fn spec() -> ModuleSpec {
        ModuleSpec::new("t")
            .input("in", 0, u32::MAX)
            .output("out", 0, u32::MAX)
    }

    fn straight_ids(plan: &CompiledPlan) -> Vec<u32> {
        plan.nodes()
            .iter()
            .filter_map(|n| match n {
                PlanNode::Straight(i) => Some(*i),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn chain_compiles_to_straight_line() {
        // a -> b -> c: three straight nodes, three levels, topo order.
        let mut b = NetlistBuilder::new();
        let ids: Vec<_> = ["a", "b", "c"]
            .iter()
            .map(|n| b.add(*n, spec(), Box::new(Nop)).unwrap())
            .collect();
        b.connect(ids[0], "out", ids[1], "in").unwrap();
        b.connect(ids[1], "out", ids[2], "in").unwrap();
        let (topo, _) = b.build().unwrap().into_parts();
        let plan = CompiledPlan::compile(&topo);
        assert!(plan.is_fully_acyclic());
        assert_eq!(plan.straight_count(), 3);
        assert_eq!(straight_ids(&plan), vec![0, 1, 2]);
        assert_eq!(plan.levels().len(), 3);
        assert_eq!(plan.island_of(1), NO_ISLAND);
    }

    #[test]
    fn diamond_shares_a_level() {
        // a -> {b, c} -> d: b and c share the middle level.
        let mut b = NetlistBuilder::new();
        let ids: Vec<_> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| b.add(*n, spec(), Box::new(Nop)).unwrap())
            .collect();
        b.connect(ids[0], "out", ids[1], "in").unwrap();
        b.connect(ids[0], "out", ids[2], "in").unwrap();
        b.connect(ids[1], "out", ids[3], "in").unwrap();
        b.connect(ids[2], "out", ids[3], "in").unwrap();
        let (topo, _) = b.build().unwrap().into_parts();
        let plan = CompiledPlan::compile(&topo);
        assert_eq!(plan.levels().len(), 3);
        let mid = plan.levels()[1];
        assert_eq!(mid.end - mid.start, 2);
        assert_eq!(mid.straight_end, mid.end, "no islands in the diamond");
        // Straight nodes within a level are id-ordered.
        assert_eq!(straight_ids(&plan), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cycle_collapses_to_island() {
        // a -> b -> c -> a, plus c -> d downstream.
        let mut b = NetlistBuilder::new();
        let ids: Vec<_> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| b.add(*n, spec(), Box::new(Nop)).unwrap())
            .collect();
        b.connect(ids[0], "out", ids[1], "in").unwrap();
        b.connect(ids[1], "out", ids[2], "in").unwrap();
        b.connect(ids[2], "out", ids[0], "in").unwrap();
        b.connect(ids[2], "out", ids[3], "in").unwrap();
        let (topo, _) = b.build().unwrap().into_parts();
        let plan = CompiledPlan::compile(&topo);
        assert!(!plan.is_fully_acyclic());
        assert_eq!(plan.island_count(), 1);
        assert_eq!(plan.straight_count(), 1);
        let Some(PlanNode::Island { island, members }) = plan
            .nodes()
            .iter()
            .find(|n| matches!(n, PlanNode::Island { .. }))
        else {
            panic!("island expected");
        };
        assert_eq!(members, &[0, 1, 2]);
        assert_eq!(plan.island_of(0), *island);
        assert_eq!(plan.island_of(3), NO_ISLAND);
        // The island's level precedes the downstream straight node.
        assert!(matches!(plan.nodes().last(), Some(PlanNode::Straight(3))));
    }

    #[test]
    fn self_connection_is_a_singleton_island() {
        let mut b = NetlistBuilder::new();
        let a = b.add("a", spec(), Box::new(Nop)).unwrap();
        b.connect(a, "out", a, "in").unwrap();
        let (topo, _) = b.build().unwrap().into_parts();
        let plan = CompiledPlan::compile(&topo);
        assert_eq!(plan.island_count(), 1);
        assert_eq!(plan.island_of(0), 0);
        assert!(matches!(
            &plan.nodes()[0],
            PlanNode::Island { members, .. } if members.as_slice() == [0]
        ));
    }

    #[test]
    fn reactive_ack_reader_forms_an_island_with_its_receiver() {
        let mut b = NetlistBuilder::new();
        let s = b
            .add(
                "s",
                ModuleSpec::new("src")
                    .output("out", 1, 1)
                    .with_ack_in_react(),
                Box::new(Nop),
            )
            .unwrap();
        let k = b
            .add("k", ModuleSpec::new("snk").input("in", 1, 1), Box::new(Nop))
            .unwrap();
        b.connect(s, "out", k, "in").unwrap();
        let (topo, _) = b.build().unwrap().into_parts();
        let plan = CompiledPlan::compile(&topo);
        assert_eq!(plan.island_count(), 1);
        assert_eq!(plan.island_of(0), plan.island_of(1));
    }

    #[test]
    fn levels_partition_the_nodes() {
        let mut b = NetlistBuilder::new();
        let ids: Vec<_> = (0..6)
            .map(|i| b.add(format!("m{i}"), spec(), Box::new(Nop)).unwrap())
            .collect();
        b.connect(ids[0], "out", ids[1], "in").unwrap();
        b.connect(ids[2], "out", ids[3], "in").unwrap();
        b.connect(ids[3], "out", ids[2], "in").unwrap(); // 2<->3 island
        b.connect(ids[1], "out", ids[4], "in").unwrap();
        let (topo, _) = b.build().unwrap().into_parts();
        let plan = CompiledPlan::compile(&topo);
        let mut covered = 0usize;
        for l in plan.levels() {
            assert!(l.start <= l.straight_end && l.straight_end <= l.end);
            covered += (l.end - l.start) as usize;
        }
        assert_eq!(covered, plan.nodes().len());
        // Every instance is in exactly one node.
        let mut seen = [false; 6];
        for n in plan.nodes() {
            match n {
                PlanNode::Straight(i) => {
                    assert!(!seen[*i as usize]);
                    seen[*i as usize] = true;
                }
                PlanNode::Island { members, .. } => {
                    for &m in members {
                        assert!(!seen[m as usize]);
                        seen[m as usize] = true;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
