//! The simulator constructed from a netlist: two-phase time-steps with
//! fixed-point signal resolution (LSE's reactive model of computation).
//!
//! Each time-step:
//!
//! 1. **Reaction phase** — module `react` handlers run (possibly several
//!    times each) until no more wires can resolve. Wires resolve
//!    monotonically; the fixed point is unique for monotone modules, so the
//!    result is independent of scheduling order.
//! 2. **Default resolution** — any wire still `Unknown` at quiescence gets
//!    the default control semantics (data `No`, enable mirrors data, ack
//!    `Yes`), *one wire at a time*, resuming reactions after each, so a
//!    module woken by a default can still drive its own wires. This is what
//!    makes partial specifications executable (paper §2.2).
//! 3. **Commit phase** — every module's `commit` runs once and updates
//!    internal state from the completed transfers.
//!
//! Two schedulers drive the reaction phase (paper ref [22]): a dynamic
//! FIFO worklist, and a static rank-ordered worklist derived from the
//! netlist's dependency structure, which reaches the same fixed point with
//! fewer handler invocations.

use crate::error::SimError;
use crate::netlist::{EdgeId, EdgeMeta, InstanceId, InstanceMeta, Netlist};
use crate::sched::{compute_ranks, RankQueue};
use crate::signal::{Res, SignalState, Wire, WriteOutcome};
use crate::stats::{Stats, StatsReport};
use crate::value::Value;
use std::collections::VecDeque;

use crate::module::{Dir, Module, PortId};

/// Which reaction-phase scheduler to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedKind {
    /// Naive repeated full sweeps until quiescence — the unoptimized
    /// baseline a simulator constructor starts from (no wake tracking).
    Sweep,
    /// FIFO worklist; wakes only the readers of newly resolved wires.
    Dynamic,
    /// Rank-ordered worklist from a topological analysis of the netlist
    /// (SCC condensation); the optimization of paper ref [22].
    Static,
}

/// Invocation counters exposed for the scheduler-optimization experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EngineMetrics {
    /// Time-steps executed.
    pub steps: u64,
    /// Total `react` handler invocations.
    pub reacts: u64,
    /// Total `commit` handler invocations.
    pub commits: u64,
    /// Wires resolved by the default control semantics.
    pub defaults: u64,
}

/// Observer of completed transfers, for tracing/visualization.
pub trait Tracer: Send {
    /// Called once per completed transfer at the end of each time-step.
    fn transfer(&mut self, now: u64, src: &str, dst: &str, value: &Value);
}

/// The executable simulator (paper Fig. 1's "Simulator Executable").
pub struct Simulator {
    meta: Vec<InstanceMeta>,
    modules: Vec<Box<dyn Module>>,
    edges: Vec<EdgeMeta>,
    signals: Vec<SignalState>,
    stats: Stats,
    now: u64,
    sched: SchedKind,
    rank_queue: Option<RankQueue>,
    metrics: EngineMetrics,
    tracer: Option<Box<dyn Tracer>>,
    wake_buf: Vec<(EdgeId, Wire)>,
}

impl Simulator {
    /// Construct a simulator from a validated netlist.
    pub fn new(net: Netlist, sched: SchedKind) -> Self {
        let n_edges = net.edges.len();
        let ranks = match sched {
            SchedKind::Dynamic | SchedKind::Sweep => Vec::new(),
            SchedKind::Static => compute_ranks(&net),
        };
        let rank_queue = (sched == SchedKind::Static).then(|| RankQueue::new(&ranks));
        Simulator {
            meta: net.instances,
            modules: net.modules,
            edges: net.edges,
            signals: vec![SignalState::default(); n_edges],
            stats: Stats::new(),
            now: 0,
            sched,
            rank_queue,
            metrics: EngineMetrics::default(),
            tracer: None,
            wake_buf: Vec::new(),
        }
    }

    /// Attach a transfer tracer.
    pub fn set_tracer(&mut self, t: Box<dyn Tracer>) {
        self.tracer = Some(t);
    }

    /// Current time-step number (cycles completed).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The statistics collected so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Engine invocation counters.
    pub fn metrics(&self) -> EngineMetrics {
        self.metrics
    }

    /// Which scheduler this simulator runs.
    pub fn sched(&self) -> SchedKind {
        self.sched
    }

    /// Instance names in id order (for stats reports).
    pub fn instance_names(&self) -> Vec<String> {
        self.meta.iter().map(|m| m.name.clone()).collect()
    }

    /// Look up an instance id by name.
    pub fn instance_by_name(&self, name: &str) -> Option<InstanceId> {
        self.meta
            .iter()
            .position(|m| m.name == name)
            .map(|i| InstanceId(i as u32))
    }

    /// Build a serializable statistics report.
    pub fn report(&self) -> StatsReport {
        self.stats.report(&self.instance_names())
    }

    /// How many instances of each template the netlist contains — the
    /// ground truth for the reuse census (experiment E6).
    pub fn template_census(&self) -> std::collections::BTreeMap<String, usize> {
        let mut census = std::collections::BTreeMap::new();
        for m in &self.meta {
            *census.entry(m.spec.template.clone()).or_insert(0) += 1;
        }
        census
    }

    /// Number of connections in the netlist.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Run `cycles` time-steps.
    pub fn run(&mut self, cycles: u64) -> Result<(), SimError> {
        for _ in 0..cycles {
            self.step()?;
        }
        Ok(())
    }

    /// Run until `pred` returns true (checked after each step) or until
    /// `max_cycles` elapse. Returns the number of steps executed.
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut pred: impl FnMut(&Stats) -> bool,
    ) -> Result<u64, SimError> {
        for c in 0..max_cycles {
            self.step()?;
            if pred(&self.stats) {
                return Ok(c + 1);
            }
        }
        Ok(max_cycles)
    }

    /// Execute one complete time-step.
    pub fn step(&mut self) -> Result<(), SimError> {
        for s in &mut self.signals {
            s.reset();
        }
        self.reaction_phase()?;
        self.default_phase()?;
        self.commit_phase()?;
        self.metrics.steps += 1;
        self.now += 1;
        Ok(())
    }

    fn react_one(&mut self, i: usize, newly: &mut Vec<(EdgeId, Wire)>) -> Result<(), SimError> {
        self.metrics.reacts += 1;
        let Simulator {
            meta,
            modules,
            edges,
            signals,
            stats,
            now,
            ..
        } = self;
        let _ = &edges;
        let mut ctx = ReactCtx {
            inst: InstanceId(i as u32),
            meta: &meta[i],
            signals,
            stats,
            newly,
            now: *now,
        };
        modules[i].react(&mut ctx)
    }

    /// Who must be re-woken when a wire resolves: data/enable flow to the
    /// receiver; ack flows to the sender, but only matters reactively when
    /// the sender declared `reads_ack_in_react` (otherwise its `commit`
    /// sees the final value regardless, so no wake is needed).
    fn wake_target(&self, e: EdgeId, wire: Wire) -> Option<InstanceId> {
        let em = &self.edges[e.0 as usize];
        match wire {
            Wire::Data | Wire::Enable => Some(em.dst.inst),
            Wire::Ack => {
                let src = em.src.inst;
                if self.meta[src.0 as usize].spec.reads_ack_in_react {
                    Some(src)
                } else {
                    None
                }
            }
        }
    }

    fn reaction_phase(&mut self) -> Result<(), SimError> {
        let n = self.meta.len();
        match self.sched {
            SchedKind::Sweep => self.drain_sweep(),
            SchedKind::Dynamic => {
                let mut queued = vec![true; n];
                let mut q: VecDeque<u32> = (0..n as u32).collect();
                self.drain_fifo(&mut q, &mut queued)
            }
            SchedKind::Static => {
                let mut q = self.rank_queue.take().expect("static rank queue");
                q.reset();
                for i in 0..n as u32 {
                    q.push(i);
                }
                let r = self.drain_ranked(&mut q);
                self.rank_queue = Some(q);
                r
            }
        }
    }

    /// Naive scheduler: sweep every instance repeatedly until a sweep
    /// resolves nothing new.
    fn drain_sweep(&mut self) -> Result<(), SimError> {
        let n = self.meta.len();
        let mut newly = std::mem::take(&mut self.wake_buf);
        let result = (|| loop {
            let mut progressed = false;
            for i in 0..n {
                newly.clear();
                self.react_one(i, &mut newly)?;
                if !newly.is_empty() {
                    progressed = true;
                }
            }
            if !progressed {
                return Ok(());
            }
        })();
        self.wake_buf = newly;
        result
    }

    fn drain_fifo(&mut self, q: &mut VecDeque<u32>, queued: &mut [bool]) -> Result<(), SimError> {
        let mut newly = std::mem::take(&mut self.wake_buf);
        let result = (|| {
            while let Some(i) = q.pop_front() {
                queued[i as usize] = false;
                newly.clear();
                self.react_one(i as usize, &mut newly)?;
                for (e, wire) in newly.drain(..) {
                    if let Some(t) = self.wake_target(e, wire) {
                        if !queued[t.0 as usize] {
                            queued[t.0 as usize] = true;
                            q.push_back(t.0);
                        }
                    }
                }
            }
            Ok(())
        })();
        self.wake_buf = newly;
        result
    }

    fn drain_ranked(&mut self, q: &mut RankQueue) -> Result<(), SimError> {
        let mut newly = std::mem::take(&mut self.wake_buf);
        let result = (|| {
            while let Some(i) = q.pop() {
                newly.clear();
                self.react_one(i as usize, &mut newly)?;
                for (e, wire) in newly.drain(..) {
                    if let Some(t) = self.wake_target(e, wire) {
                        q.push(t.0);
                    }
                }
            }
            Ok(())
        })();
        self.wake_buf = newly;
        result
    }

    /// Lazy default resolution: default the lowest-numbered unresolved
    /// wire, wake its reader, resume reactions; repeat to full resolution.
    fn default_phase(&mut self) -> Result<(), SimError> {
        let mut cursor = 0usize;
        loop {
            // Advance past fully resolved edges; resolution is monotone so
            // the cursor never needs to move backwards.
            while cursor < self.signals.len() {
                let s = &self.signals[cursor];
                if s.data.is_resolved() && s.enable.is_resolved() && s.ack.is_resolved() {
                    cursor += 1;
                } else {
                    break;
                }
            }
            if cursor >= self.signals.len() {
                return Ok(());
            }
            let e = EdgeId(cursor as u32);
            let wire = {
                let s = &mut self.signals[cursor];
                if !s.data.is_resolved() {
                    s.write_data(Res::No)?;
                    Wire::Data
                } else if !s.enable.is_resolved() {
                    let en = if s.data.is_yes() { Res::Yes(()) } else { Res::No };
                    s.write_enable(en)?;
                    Wire::Enable
                } else {
                    s.write_ack(Res::Yes(()))?;
                    Wire::Ack
                }
            };
            self.metrics.defaults += 1;
            let Some(target) = self.wake_target(e, wire) else {
                continue;
            };
            let target = target.0;
            match self.sched {
                SchedKind::Sweep => self.drain_sweep()?,
                SchedKind::Dynamic => {
                    let n = self.meta.len();
                    let mut queued = vec![false; n];
                    let mut q = VecDeque::with_capacity(4);
                    queued[target as usize] = true;
                    q.push_back(target);
                    self.drain_fifo(&mut q, &mut queued)?;
                }
                SchedKind::Static => {
                    let mut q = self.rank_queue.take().expect("static rank queue");
                    q.reset();
                    q.push(target);
                    let r = self.drain_ranked(&mut q);
                    self.rank_queue = Some(q);
                    r?;
                }
            }
        }
    }

    fn commit_phase(&mut self) -> Result<(), SimError> {
        for i in 0..self.meta.len() {
            self.metrics.commits += 1;
            let Simulator {
                meta,
                modules,
                edges,
                signals,
                stats,
                now,
                ..
            } = self;
            let _ = &edges;
            let mut ctx = CommitCtx {
                inst: InstanceId(i as u32),
                meta: &meta[i],
                signals,
                stats,
                now: *now,
            };
            modules[i].commit(&mut ctx)?;
        }
        if let Some(tracer) = &mut self.tracer {
            for (ei, s) in self.signals.iter().enumerate() {
                if let Some(v) = s.transferred() {
                    let em = &self.edges[ei];
                    tracer.transfer(
                        self.now,
                        &self.meta[em.src.inst.0 as usize].name,
                        &self.meta[em.dst.inst.0 as usize].name,
                        v,
                    );
                }
            }
        }
        Ok(())
    }
}

/// Context handed to [`Module::react`]: resolved-signal reads plus
/// monotonic wire writes on the reacting instance's own ports.
pub struct ReactCtx<'a> {
    inst: InstanceId,
    meta: &'a InstanceMeta,
    signals: &'a mut [SignalState],
    stats: &'a mut Stats,
    newly: &'a mut Vec<(EdgeId, Wire)>,
    now: u64,
}

impl<'a> ReactCtx<'a> {
    /// Current time-step.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// This instance's id.
    pub fn instance(&self) -> InstanceId {
        self.inst
    }

    /// This instance's name.
    pub fn name(&self) -> &str {
        &self.meta.name
    }

    /// Number of connections on a port (0 when left unconnected).
    pub fn width(&self, port: PortId) -> usize {
        self.meta.width(port)
    }

    fn edge(&self, port: PortId, index: usize) -> Option<EdgeId> {
        self.meta.edges[port.0 as usize].get(index).copied()
    }

    fn check_dir(&self, port: PortId, want: Dir) -> Result<(), SimError> {
        let spec = self.meta.spec.port_spec(port);
        if spec.dir != want {
            return Err(SimError::port(format!(
                "{}.{}: wrong direction for this operation",
                self.meta.name, spec.name
            )));
        }
        Ok(())
    }

    /// The data wire arriving on an input connection. An unconnected or
    /// out-of-range slot reads as `No` — the partial-specification default.
    /// Returns a clone; `Value` payloads are reference counted, so this is
    /// cheap.
    pub fn data(&self, port: PortId, index: usize) -> Res<Value> {
        match self.edge(port, index) {
            Some(e) => self.signals[e.0 as usize].data.clone(),
            None => Res::No,
        }
    }

    /// The enable wire arriving on an input connection.
    pub fn enable(&self, port: PortId, index: usize) -> Res<()> {
        match self.edge(port, index) {
            Some(e) => self.signals[e.0 as usize].enable.clone(),
            None => Res::No,
        }
    }

    /// The ack wire arriving on an output connection. Unconnected slots
    /// read as `Yes` (an absent consumer accepts everything).
    ///
    /// Reading acks reactively requires the template to declare
    /// [`ModuleSpec::with_ack_in_react`]; otherwise the kernel does not
    /// re-wake this module when acks resolve, and the read would be racy.
    pub fn ack(&self, port: PortId, index: usize) -> Result<Res<()>, SimError> {
        if !self.meta.spec.reads_ack_in_react {
            return Err(SimError::contract(format!(
                "{} ({}): react reads an ack wire but the template did not \
                 declare with_ack_in_react()",
                self.meta.name, self.meta.spec.template
            )));
        }
        Ok(match self.edge(port, index) {
            Some(e) => self.signals[e.0 as usize].ack.clone(),
            None => Res::Yes(()),
        })
    }

    fn write(
        &mut self,
        port: PortId,
        index: usize,
        wire: Wire,
        f: impl FnOnce(&mut SignalState) -> Result<WriteOutcome, SimError>,
    ) -> Result<(), SimError> {
        let Some(e) = self.edge(port, index) else {
            return Ok(()); // unconnected: silently accepted (partial spec)
        };
        match f(&mut self.signals[e.0 as usize]) {
            Ok(WriteOutcome::NewlyResolved) => {
                self.newly.push((e, wire));
                Ok(())
            }
            Ok(WriteOutcome::Idempotent) => Ok(()),
            Err(err) => Err(SimError::contract(format!(
                "{} ({}): {err}",
                self.meta.name, self.meta.spec.template
            ))),
        }
    }

    /// Send a value on an output connection: drives data `Yes` and enable
    /// `Yes` together (the common case).
    pub fn send(&mut self, port: PortId, index: usize, v: Value) -> Result<(), SimError> {
        self.check_dir(port, Dir::Out)?;
        self.write(port, index, Wire::Data, |s| s.write_data(Res::Yes(v)))?;
        self.write(port, index, Wire::Enable, |s| s.write_enable(Res::Yes(())))
    }

    /// Explicitly send nothing on an output connection this time-step:
    /// drives data `No` and enable `No`. Well-behaved modules resolve every
    /// connected output rather than leaving it to the defaults.
    pub fn send_nothing(&mut self, port: PortId, index: usize) -> Result<(), SimError> {
        self.check_dir(port, Dir::Out)?;
        self.write(port, index, Wire::Data, |s| s.write_data(Res::No))?;
        self.write(port, index, Wire::Enable, |s| s.write_enable(Res::No))
    }

    /// Drive only the data wire (control-split protocols that decide enable
    /// separately).
    pub fn set_data(&mut self, port: PortId, index: usize, v: Res<Value>) -> Result<(), SimError> {
        self.check_dir(port, Dir::Out)?;
        self.write(port, index, Wire::Data, |s| s.write_data(v))
    }

    /// Drive only the enable wire.
    pub fn set_enable(&mut self, port: PortId, index: usize, en: bool) -> Result<(), SimError> {
        self.check_dir(port, Dir::Out)?;
        let r = if en { Res::Yes(()) } else { Res::No };
        self.write(port, index, Wire::Enable, |s| s.write_enable(r))
    }

    /// Drive the ack wire of an input connection: accept (`true`) or
    /// refuse (`false`) the offered data.
    pub fn set_ack(&mut self, port: PortId, index: usize, accept: bool) -> Result<(), SimError> {
        self.check_dir(port, Dir::In)?;
        let r = if accept { Res::Yes(()) } else { Res::No };
        self.write(port, index, Wire::Ack, |s| s.write_ack(r))
    }

    /// Add to one of this instance's counters.
    pub fn count(&mut self, name: &'static str, by: u64) {
        self.stats.count(self.inst, name, by);
    }

    /// Record a sample on one of this instance's sampled stats.
    pub fn sample(&mut self, name: &'static str, v: f64) {
        self.stats.sample(self.inst, name, v);
    }
}

/// Context handed to [`Module::commit`]: read-only access to the fully
/// resolved signals of the time-step, plus statistics.
pub struct CommitCtx<'a> {
    inst: InstanceId,
    meta: &'a InstanceMeta,
    signals: &'a [SignalState],
    stats: &'a mut Stats,
    now: u64,
}

impl<'a> CommitCtx<'a> {
    /// Current time-step.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// This instance's id.
    pub fn instance(&self) -> InstanceId {
        self.inst
    }

    /// This instance's name.
    pub fn name(&self) -> &str {
        &self.meta.name
    }

    /// Number of connections on a port.
    pub fn width(&self, port: PortId) -> usize {
        self.meta.width(port)
    }

    fn edge(&self, port: PortId, index: usize) -> Option<EdgeId> {
        self.meta.edges[port.0 as usize].get(index).copied()
    }

    /// The value transferred in on an input connection this time-step
    /// (data present, enabled and accepted), if any. Returns a clone;
    /// `Value` payloads are reference counted, so this is cheap.
    pub fn transferred_in(&self, port: PortId, index: usize) -> Option<Value> {
        let e = self.edge(port, index)?;
        self.signals[e.0 as usize].transferred().cloned()
    }

    /// True iff the value this instance sent on an output connection was
    /// accepted (the transfer completed). An unconnected slot reads as
    /// `true` — the partial-specification default is that an absent
    /// consumer accepts everything — so this is only meaningful when the
    /// module actually offered something this cycle.
    pub fn transferred_out(&self, port: PortId, index: usize) -> bool {
        match self.edge(port, index) {
            Some(e) => self.signals[e.0 as usize].transfers(),
            None => true,
        }
    }

    /// Final resolution of the data wire on an input connection (a clone).
    pub fn data(&self, port: PortId, index: usize) -> Res<Value> {
        match self.edge(port, index) {
            Some(e) => self.signals[e.0 as usize].data.clone(),
            None => Res::No,
        }
    }

    /// Final resolution of the ack wire on an output connection.
    pub fn acked(&self, port: PortId, index: usize) -> bool {
        match self.edge(port, index) {
            Some(e) => self.signals[e.0 as usize].ack.is_yes(),
            None => true,
        }
    }

    /// Add to one of this instance's counters.
    pub fn count(&mut self, name: &'static str, by: u64) {
        self.stats.count(self.inst, name, by);
    }

    /// Record a sample on one of this instance's sampled stats.
    pub fn sample(&mut self, name: &'static str, v: f64) {
        self.stats.sample(self.inst, name, v);
    }
}
