//! Statistics collection shared by all modules.
//!
//! Modules emit counters and samples through their contexts; the engine
//! aggregates them per instance. Reports are serializable so the benchmark
//! harness can regenerate the experiment tables from raw runs.

use crate::netlist::InstanceId;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Running aggregate of a sampled quantity.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Sample {
    /// Sum of all samples.
    pub sum: f64,
    /// Number of samples.
    pub n: u64,
    /// Minimum sample seen.
    pub min: f64,
    /// Maximum sample seen.
    pub max: f64,
}

impl Sample {
    fn new(v: f64) -> Self {
        Sample {
            sum: v,
            n: 1,
            min: v,
            max: v,
        }
    }

    fn add(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }
}

/// Per-run statistics store, keyed by `(instance, stat name)`.
///
/// Stat names are `&'static str` so the hot increment path does no
/// allocation.
#[derive(Default, Debug)]
pub struct Stats {
    counters: HashMap<(u32, &'static str), u64>,
    samples: HashMap<(u32, &'static str), Sample>,
}

impl Stats {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to a counter of an instance. Wrapping, so counters can be
    /// used as order-independent checksums of arbitrary word streams.
    pub fn count(&mut self, inst: InstanceId, name: &'static str, by: u64) {
        let c = self.counters.entry((inst.0, name)).or_insert(0);
        *c = c.wrapping_add(by);
    }

    /// Record one sample of a quantity of an instance.
    pub fn sample(&mut self, inst: InstanceId, name: &'static str, v: f64) {
        self.samples
            .entry((inst.0, name))
            .and_modify(|s| s.add(v))
            .or_insert_with(|| Sample::new(v));
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, inst: InstanceId, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|((i, n), _)| *i == inst.0 && *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Current aggregate of a sampled quantity, if any samples were taken.
    pub fn get_sample(&self, inst: InstanceId, name: &str) -> Option<Sample> {
        self.samples
            .iter()
            .find(|((i, n), _)| *i == inst.0 && *n == name)
            .map(|(_, v)| *v)
    }

    /// Sum of a counter across all instances (e.g. total retired
    /// instructions over every core).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((_, n), _)| *n == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Merge all samples of one stat name across instances.
    pub fn sample_total(&self, name: &str) -> Option<Sample> {
        let mut acc: Option<Sample> = None;
        for ((_, n), s) in &self.samples {
            if *n == name {
                match &mut acc {
                    None => acc = Some(*s),
                    Some(a) => {
                        a.sum += s.sum;
                        a.n += s.n;
                        a.min = a.min.min(s.min);
                        a.max = a.max.max(s.max);
                    }
                }
            }
        }
        acc
    }

    /// Produce a human/machine-readable report keyed by instance name.
    /// Accepts any slice of string-likes (`&[&str]`, `&[String]`, …).
    pub fn report<S: AsRef<str>>(&self, names: &[S]) -> StatsReport {
        let name_of = |i: u32| {
            names
                .get(i as usize)
                .map(|s| s.as_ref().to_owned())
                .unwrap_or_else(|| format!("#{i}"))
        };
        let mut counters = BTreeMap::new();
        let mut samples = BTreeMap::new();
        for ((i, n), v) in &self.counters {
            counters.insert(format!("{}.{n}", name_of(*i)), *v);
        }
        for ((i, n), s) in &self.samples {
            samples.insert(format!("{}.{n}", name_of(*i)), *s);
        }
        StatsReport { counters, samples }
    }
}

/// Flattened, serializable statistics report.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct StatsReport {
    /// `instance.stat -> count`.
    pub counters: BTreeMap<String, u64>,
    /// `instance.stat -> aggregate`.
    pub samples: BTreeMap<String, Sample>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        let i = InstanceId(0);
        s.count(i, "retired", 3);
        s.count(i, "retired", 2);
        assert_eq!(s.counter(i, "retired"), 5);
        assert_eq!(s.counter(i, "absent"), 0);
    }

    #[test]
    fn samples_track_min_max_mean() {
        let mut s = Stats::new();
        let i = InstanceId(1);
        s.sample(i, "lat", 4.0);
        s.sample(i, "lat", 8.0);
        let a = s.get_sample(i, "lat").unwrap();
        assert_eq!(a.n, 2);
        assert_eq!(a.min, 4.0);
        assert_eq!(a.max, 8.0);
        assert_eq!(a.mean(), 6.0);
    }

    #[test]
    fn totals_merge_across_instances() {
        let mut s = Stats::new();
        s.count(InstanceId(0), "retired", 10);
        s.count(InstanceId(1), "retired", 20);
        s.count(InstanceId(1), "other", 5);
        assert_eq!(s.counter_total("retired"), 30);
        s.sample(InstanceId(0), "lat", 1.0);
        s.sample(InstanceId(1), "lat", 3.0);
        let t = s.sample_total("lat").unwrap();
        assert_eq!(t.n, 2);
        assert_eq!(t.mean(), 2.0);
        assert!(s.sample_total("none").is_none());
    }

    #[test]
    fn report_uses_instance_names() {
        let mut s = Stats::new();
        s.count(InstanceId(0), "x", 1);
        s.sample(InstanceId(1), "y", 2.0);
        let r = s.report(&["alpha".to_owned(), "beta".to_owned()]);
        assert_eq!(r.counters["alpha.x"], 1);
        assert_eq!(r.samples["beta.y"].n, 1);
    }

    #[test]
    fn empty_sample_mean_is_zero() {
        let s = Sample {
            sum: 0.0,
            n: 0,
            min: 0.0,
            max: 0.0,
        };
        assert_eq!(s.mean(), 0.0);
    }
}
