//! Statistics collection shared by all modules.
//!
//! Modules emit counters, samples and histogram records through their
//! contexts; the engine aggregates them per instance. Reports are
//! serializable so the benchmark harness can regenerate the experiment
//! tables from raw runs.
//!
//! Storage is keyed **name-first** (`name -> instance -> value`): stat
//! names are `&'static str`, so the hot increment path allocates nothing,
//! point lookups ([`Stats::counter`], [`Stats::get_sample`]) are two O(1)
//! hash gets, and the cross-instance totals ([`Stats::counter_total`],
//! [`Stats::sample_total`]) reduce one inner map instead of scanning the
//! whole store.

use crate::netlist::InstanceId;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Running aggregate of a sampled quantity.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Sample {
    /// Sum of all samples.
    pub sum: f64,
    /// Number of samples.
    pub n: u64,
    /// Minimum sample seen.
    pub min: f64,
    /// Maximum sample seen.
    pub max: f64,
}

impl Sample {
    fn add(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn merge(&mut self, other: &Sample) {
        self.sum += other.sum;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }
}

/// A log2-bucket histogram of `u64` values: bucket `i` counts values with
/// bit-width `i` (so bucket 0 is exactly the zeros, bucket `i ≥ 1` covers
/// `[2^(i-1), 2^i - 1]`). Recording is O(1) and allocation-free once the
/// bucket vector has grown to the largest bit-width seen.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let b = (u64::BITS - v.leading_zeros()) as usize;
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Wrapping sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of recorded values (0 when empty; wraps for huge sums).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, n) in other.buckets.iter().enumerate() {
            self.buckets[b] += n;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Occupied buckets as `(lo, hi, count)` ranges (inclusive bounds).
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter_map(|(i, &n)| {
            if n == 0 {
                return None;
            }
            let (lo, hi) = Self::bounds(i);
            Some((lo, hi, n))
        })
    }

    /// Raw fields for the checkpoint codec (`crate::snapshot`).
    pub(crate) fn raw_parts(&self) -> (&[u64], u64, u64) {
        (&self.buckets, self.count, self.sum)
    }

    /// Rebuild from raw fields read back out of a checkpoint.
    pub(crate) fn from_raw_parts(buckets: Vec<u64>, count: u64, sum: u64) -> Self {
        Histogram {
            buckets,
            count,
            sum,
        }
    }

    /// Inclusive value range of bucket `i`.
    fn bounds(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Render an ASCII bucket table (one line per occupied bucket) —
    /// the front ends' `--metrics-out`-adjacent human view.
    pub fn render(&self) -> String {
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (lo, hi, n) in self.buckets() {
            let bar = "#".repeat(((n * 40).div_ceil(peak)) as usize);
            out.push_str(&format!("  [{lo:>12} .. {hi:>12}] {n:>10} {bar}\n"));
        }
        out
    }
}

/// Sentinel for an unresolved cached stat slot (see [`Stats::count_cached`]).
pub(crate) const STAT_SLOT_UNRESOLVED: u32 = u32::MAX;

/// Per-run statistics store, keyed by stat name, then instance.
///
/// Stat names are `&'static str` so the hot increment path does no
/// allocation; lookups with runtime `&str` names still hash straight to
/// the entry (`&'static str: Borrow<str>`).
///
/// Values live in dense per-kind slot vectors; the name/instance maps
/// hold `u32` indices into them. The indirection is invisible to the
/// public API, but it gives the specialized handler kernels
/// (`crate::kernel`) an O(1), hash-free increment path: resolve a slot
/// once via the cached accessors below, then bump the vector entry
/// directly on every subsequent step.
#[derive(Default, Debug)]
pub struct Stats {
    counters: HashMap<&'static str, HashMap<u32, u32>>,
    samples: HashMap<&'static str, HashMap<u32, u32>>,
    histograms: HashMap<&'static str, HashMap<u32, u32>>,
    counter_vals: Vec<u64>,
    sample_vals: Vec<Sample>,
    histo_vals: Vec<Histogram>,
}

impl Stats {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Slot of a counter, creating a zeroed one on first touch.
    fn counter_slot(&mut self, inst: InstanceId, name: &'static str) -> u32 {
        let vals = &mut self.counter_vals;
        *self
            .counters
            .entry(name)
            .or_default()
            .entry(inst.0)
            .or_insert_with(|| {
                vals.push(0);
                (vals.len() - 1) as u32
            })
    }

    /// Slot of a sample aggregate, creating an empty one on first touch.
    fn sample_slot(&mut self, inst: InstanceId, name: &'static str) -> u32 {
        let vals = &mut self.sample_vals;
        *self
            .samples
            .entry(name)
            .or_default()
            .entry(inst.0)
            .or_insert_with(|| {
                vals.push(Sample {
                    sum: 0.0,
                    n: 0,
                    min: f64::INFINITY,
                    max: f64::NEG_INFINITY,
                });
                (vals.len() - 1) as u32
            })
    }

    /// Slot of a histogram, creating an empty one on first touch.
    fn histo_slot(&mut self, inst: InstanceId, name: &'static str) -> u32 {
        let vals = &mut self.histo_vals;
        *self
            .histograms
            .entry(name)
            .or_default()
            .entry(inst.0)
            .or_insert_with(|| {
                vals.push(Histogram::new());
                (vals.len() - 1) as u32
            })
    }

    /// Add `by` to a counter of an instance. Wrapping, so counters can be
    /// used as order-independent checksums of arbitrary word streams.
    pub fn count(&mut self, inst: InstanceId, name: &'static str, by: u64) {
        let slot = self.counter_slot(inst, name);
        let c = &mut self.counter_vals[slot as usize];
        *c = c.wrapping_add(by);
    }

    /// Record one sample of a quantity of an instance.
    pub fn sample(&mut self, inst: InstanceId, name: &'static str, v: f64) {
        let slot = self.sample_slot(inst, name);
        self.sample_vals[slot as usize].add(v);
    }

    /// Record one value into a log2-bucket histogram of an instance.
    pub fn histo(&mut self, inst: InstanceId, name: &'static str, v: u64) {
        let slot = self.histo_slot(inst, name);
        self.histo_vals[slot as usize].record(v);
    }

    /// Counter bump through a caller-cached slot: resolves the slot on
    /// first use (two hash gets, entry creation — exactly what
    /// [`Stats::count`] would do), then a single vector index ever after.
    /// The hot path of the specialized kernels.
    #[inline]
    pub(crate) fn count_cached(
        &mut self,
        slot: &mut u32,
        inst: InstanceId,
        name: &'static str,
        by: u64,
    ) {
        if *slot == STAT_SLOT_UNRESOLVED {
            *slot = self.counter_slot(inst, name);
        }
        let c = &mut self.counter_vals[*slot as usize];
        *c = c.wrapping_add(by);
    }

    /// Sample through a caller-cached slot (see [`Stats::count_cached`]).
    #[inline]
    pub(crate) fn sample_cached(
        &mut self,
        slot: &mut u32,
        inst: InstanceId,
        name: &'static str,
        v: f64,
    ) {
        if *slot == STAT_SLOT_UNRESOLVED {
            *slot = self.sample_slot(inst, name);
        }
        self.sample_vals[*slot as usize].add(v);
    }

    /// Histogram record through a caller-cached slot (see
    /// [`Stats::count_cached`]).
    #[inline]
    pub(crate) fn histo_cached(
        &mut self,
        slot: &mut u32,
        inst: InstanceId,
        name: &'static str,
        v: u64,
    ) {
        if *slot == STAT_SLOT_UNRESOLVED {
            *slot = self.histo_slot(inst, name);
        }
        self.histo_vals[*slot as usize].record(v);
    }

    /// Current value of a counter (0 if never touched). O(1): two hash
    /// gets, no scan.
    pub fn counter(&self, inst: InstanceId, name: &str) -> u64 {
        self.counters
            .get(name)
            .and_then(|m| m.get(&inst.0))
            .map(|&slot| self.counter_vals[slot as usize])
            .unwrap_or(0)
    }

    /// Current aggregate of a sampled quantity, if any samples were
    /// taken. O(1): two hash gets, no scan.
    pub fn get_sample(&self, inst: InstanceId, name: &str) -> Option<Sample> {
        self.samples
            .get(name)
            .and_then(|m| m.get(&inst.0))
            .map(|&slot| self.sample_vals[slot as usize])
    }

    /// An instance's histogram of a stat, if any values were recorded.
    pub fn histogram(&self, inst: InstanceId, name: &str) -> Option<&Histogram> {
        self.histograms
            .get(name)
            .and_then(|m| m.get(&inst.0))
            .map(|&slot| &self.histo_vals[slot as usize])
    }

    /// Sum of a counter across all instances (e.g. total retired
    /// instructions over every core). The name-first keying makes this a
    /// single inner-map reduction, not a full-store scan.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .get(name)
            .map(|m| {
                m.values().fold(0u64, |a, &slot| {
                    a.wrapping_add(self.counter_vals[slot as usize])
                })
            })
            .unwrap_or(0)
    }

    /// Merge all samples of one stat name across instances.
    pub fn sample_total(&self, name: &str) -> Option<Sample> {
        let per_inst = self.samples.get(name)?;
        let mut acc: Option<Sample> = None;
        for &slot in per_inst.values() {
            let s = &self.sample_vals[slot as usize];
            match &mut acc {
                None => acc = Some(*s),
                Some(a) => a.merge(s),
            }
        }
        acc
    }

    /// Merge all histograms of one stat name across instances.
    pub fn histogram_total(&self, name: &str) -> Option<Histogram> {
        let per_inst = self.histograms.get(name)?;
        let mut acc: Option<Histogram> = None;
        for &slot in per_inst.values() {
            let h = &self.histo_vals[slot as usize];
            match &mut acc {
                None => acc = Some(h.clone()),
                Some(a) => a.merge(h),
            }
        }
        acc
    }

    /// Deterministic dump for the checkpoint codec (`crate::snapshot`):
    /// every store sorted by (name, instance), so encoding the dump is
    /// byte-stable across runs regardless of hash-map iteration order.
    pub(crate) fn dump(&self) -> StatsDump {
        fn sorted<V: Clone>(
            m: &HashMap<&'static str, HashMap<u32, u32>>,
            vals: &[V],
        ) -> Vec<(String, Vec<(u32, V)>)> {
            let mut out: Vec<(String, Vec<(u32, V)>)> = m
                .iter()
                .map(|(name, per_inst)| {
                    let mut inner: Vec<(u32, V)> = per_inst
                        .iter()
                        .map(|(i, &slot)| (*i, vals[slot as usize].clone()))
                        .collect();
                    inner.sort_by_key(|(i, _)| *i);
                    ((*name).to_owned(), inner)
                })
                .collect();
            out.sort_by(|a, b| a.0.cmp(&b.0));
            out
        }
        StatsDump {
            counters: sorted(&self.counters, &self.counter_vals),
            samples: sorted(&self.samples, &self.sample_vals),
            histograms: sorted(&self.histograms, &self.histo_vals),
        }
    }

    /// Rebuild a store from a dump read back out of a checkpoint. Stat
    /// names in the live store are `&'static str`; names arriving from
    /// disk are interned (leaked once per distinct name, deduplicated
    /// process-wide) so the rebuilt store is indistinguishable from one
    /// the modules populated themselves.
    pub(crate) fn restore_from_dump(d: &StatsDump) -> Stats {
        fn rebuild<V: Clone>(
            src: &[(String, Vec<(u32, V)>)],
            vals: &mut Vec<V>,
        ) -> HashMap<&'static str, HashMap<u32, u32>> {
            src.iter()
                .map(|(name, per_inst)| {
                    (
                        intern_stat_name(name),
                        per_inst
                            .iter()
                            .map(|(i, v)| {
                                vals.push(v.clone());
                                (*i, (vals.len() - 1) as u32)
                            })
                            .collect(),
                    )
                })
                .collect()
        }
        let mut counter_vals = Vec::new();
        let mut sample_vals = Vec::new();
        let mut histo_vals = Vec::new();
        Stats {
            counters: rebuild(&d.counters, &mut counter_vals),
            samples: rebuild(&d.samples, &mut sample_vals),
            histograms: rebuild(&d.histograms, &mut histo_vals),
            counter_vals,
            sample_vals,
            histo_vals,
        }
    }

    /// Produce a human/machine-readable report keyed by instance name.
    /// Accepts any slice of string-likes (`&[&str]`, `&[String]`, …).
    pub fn report<S: AsRef<str>>(&self, names: &[S]) -> StatsReport {
        let name_of = |i: u32| {
            names
                .get(i as usize)
                .map(|s| s.as_ref().to_owned())
                .unwrap_or_else(|| format!("#{i}"))
        };
        let mut counters = BTreeMap::new();
        let mut samples = BTreeMap::new();
        let mut histograms = BTreeMap::new();
        for (n, per_inst) in &self.counters {
            for (i, &slot) in per_inst {
                counters.insert(
                    format!("{}.{n}", name_of(*i)),
                    self.counter_vals[slot as usize],
                );
            }
        }
        for (n, per_inst) in &self.samples {
            for (i, &slot) in per_inst {
                samples.insert(
                    format!("{}.{n}", name_of(*i)),
                    self.sample_vals[slot as usize],
                );
            }
        }
        for (n, per_inst) in &self.histograms {
            for (i, &slot) in per_inst {
                histograms.insert(
                    format!("{}.{n}", name_of(*i)),
                    self.histo_vals[slot as usize].clone(),
                );
            }
        }
        StatsReport {
            counters,
            samples,
            histograms,
        }
    }
}

/// Order-stable image of a [`Stats`] store, exchanged with the
/// checkpoint codec. Not serialized itself — `crate::snapshot` walks it
/// with its own length-prefixed binary writer.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct StatsDump {
    pub(crate) counters: Vec<(String, Vec<(u32, u64)>)>,
    pub(crate) samples: Vec<(String, Vec<(u32, Sample)>)>,
    pub(crate) histograms: Vec<(String, Vec<(u32, Histogram)>)>,
}

/// Intern a stat name read from a checkpoint as `&'static str`. Leaks at
/// most once per distinct name for the process lifetime; repeated
/// restores of the same checkpoint reuse the first leak.
fn intern_stat_name(name: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut table = TABLE
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("stat name intern table lock");
    if let Some(s) = table.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    table.insert(leaked);
    leaked
}

/// Flattened, serializable statistics report. `PartialEq` so equivalence
/// tests can compare final architectural state across schedulers.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StatsReport {
    /// `instance.stat -> count`.
    pub counters: BTreeMap<String, u64>,
    /// `instance.stat -> aggregate`.
    pub samples: BTreeMap<String, Sample>,
    /// `instance.stat -> log2-bucket histogram`.
    pub histograms: BTreeMap<String, Histogram>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        let i = InstanceId(0);
        s.count(i, "retired", 3);
        s.count(i, "retired", 2);
        assert_eq!(s.counter(i, "retired"), 5);
        assert_eq!(s.counter(i, "absent"), 0);
    }

    #[test]
    fn lookup_works_with_runtime_names() {
        // `counter` takes a non-static &str; the name-first map must hash
        // straight to the entry rather than scanning.
        let mut s = Stats::new();
        s.count(InstanceId(3), "hits", 7);
        let runtime_name = String::from("hits");
        assert_eq!(s.counter(InstanceId(3), &runtime_name), 7);
        assert_eq!(s.counter(InstanceId(2), &runtime_name), 0);
    }

    #[test]
    fn samples_track_min_max_mean() {
        let mut s = Stats::new();
        let i = InstanceId(1);
        s.sample(i, "lat", 4.0);
        s.sample(i, "lat", 8.0);
        let a = s.get_sample(i, "lat").unwrap();
        assert_eq!(a.n, 2);
        assert_eq!(a.min, 4.0);
        assert_eq!(a.max, 8.0);
        assert_eq!(a.mean(), 6.0);
    }

    #[test]
    fn totals_merge_across_instances() {
        let mut s = Stats::new();
        s.count(InstanceId(0), "retired", 10);
        s.count(InstanceId(1), "retired", 20);
        s.count(InstanceId(1), "other", 5);
        assert_eq!(s.counter_total("retired"), 30);
        s.sample(InstanceId(0), "lat", 1.0);
        s.sample(InstanceId(1), "lat", 3.0);
        let t = s.sample_total("lat").unwrap();
        assert_eq!(t.n, 2);
        assert_eq!(t.mean(), 2.0);
        assert!(s.sample_total("none").is_none());
    }

    #[test]
    fn report_uses_instance_names() {
        let mut s = Stats::new();
        s.count(InstanceId(0), "x", 1);
        s.sample(InstanceId(1), "y", 2.0);
        s.histo(InstanceId(0), "z", 9);
        let r = s.report(&["alpha".to_owned(), "beta".to_owned()]);
        assert_eq!(r.counters["alpha.x"], 1);
        assert_eq!(r.samples["beta.y"].n, 1);
        assert_eq!(r.histograms["alpha.z"].count(), 1);
    }

    #[test]
    fn empty_sample_mean_is_zero() {
        let s = Sample {
            sum: 0.0,
            n: 0,
            min: 0.0,
            max: 0.0,
        };
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn histogram_buckets_by_bit_width() {
        let mut h = Histogram::new();
        h.record(0); // bucket 0: [0, 0]
        h.record(1); // bucket 1: [1, 1]
        h.record(2); // bucket 2: [2, 3]
        h.record(3);
        h.record(700); // bucket 10: [512, 1023]
        let b: Vec<_> = h.buckets().collect();
        assert_eq!(b, vec![(0, 0, 1), (1, 1, 1), (2, 3, 2), (512, 1023, 1)]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 706);
        assert!((h.mean() - 141.2).abs() < 1e-9);
    }

    #[test]
    fn histogram_extremes_and_merge() {
        let mut h = Histogram::new();
        h.record(u64::MAX); // bucket 64: [2^63, MAX]
        let b: Vec<_> = h.buckets().collect();
        assert_eq!(b, vec![(1 << 63, u64::MAX, 1)]);
        let mut h2 = Histogram::new();
        h2.record(1);
        h2.merge(&h);
        assert_eq!(h2.count(), 2);
        assert_eq!(h2.buckets().count(), 2);
    }

    #[test]
    fn histogram_totals_merge_across_instances() {
        let mut s = Stats::new();
        s.histo(InstanceId(0), "lat", 2);
        s.histo(InstanceId(1), "lat", 3);
        s.histo(InstanceId(1), "lat", 1000);
        let t = s.histogram_total("lat").unwrap();
        assert_eq!(t.count(), 3);
        assert_eq!(s.histogram(InstanceId(1), "lat").unwrap().count(), 2);
        assert!(s.histogram_total("none").is_none());
        assert!(s.histogram(InstanceId(0), "none").is_none());
    }

    #[test]
    fn dump_is_sorted_and_rebuilds_identically() {
        let mut s = Stats::new();
        s.count(InstanceId(3), "zeta", 7);
        s.count(InstanceId(1), "zeta", 2);
        s.count(InstanceId(0), "alpha", 1);
        s.sample(InstanceId(2), "lat", 4.5);
        s.histo(InstanceId(0), "occ", 9);
        let d = s.dump();
        assert_eq!(d.counters[0].0, "alpha");
        assert_eq!(d.counters[1].0, "zeta");
        assert_eq!(d.counters[1].1, vec![(1, 2), (3, 7)]);
        let r = Stats::restore_from_dump(&d);
        assert_eq!(r.counter(InstanceId(3), "zeta"), 7);
        assert_eq!(r.counter(InstanceId(0), "alpha"), 1);
        assert_eq!(
            r.get_sample(InstanceId(2), "lat"),
            s.get_sample(InstanceId(2), "lat")
        );
        assert_eq!(
            r.histogram(InstanceId(0), "occ"),
            s.histogram(InstanceId(0), "occ")
        );
        assert_eq!(r.dump(), d, "dump -> restore -> dump is a fixed point");
    }

    #[test]
    fn histogram_render_lists_occupied_buckets() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(5);
        h.record(90);
        let r = h.render();
        assert!(r.contains("[           4 ..            7]"), "{r}");
        assert!(r.contains("[          64 ..          127]"), "{r}");
        assert_eq!(r.lines().count(), 2);
    }
}
