//! Error types for netlist construction, elaboration and simulation.

use std::fmt;

/// One wire that failed to settle when the convergence watchdog fired:
/// which connection, which of its three wires, and how many times a
/// module re-resolved it to a conflicting value this step.
#[derive(Debug, Clone, PartialEq)]
pub struct OscillatingWire {
    /// Edge (connection) id of the oscillating wire.
    pub edge: u32,
    /// Which wire of the connection ("data", "enable" or "ack").
    pub wire: &'static str,
    /// Sender instance name.
    pub src: String,
    /// Receiver instance name.
    pub dst: String,
    /// Conflicting re-resolutions observed on this wire this step.
    pub flips: u64,
}

/// Structured payload of [`SimError::Divergence`]: what was still
/// fighting when the per-step reaction budget ran out.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceInfo {
    /// Time-step in which the watchdog fired.
    pub step: u64,
    /// `react` invocations consumed this step when the limit was hit.
    pub iters: u64,
    /// The configured per-step iteration limit.
    pub limit: u64,
    /// The wires observed oscillating, in (edge, wire) order.
    pub oscillating: Vec<OscillatingWire>,
    /// Instance names on the resolution cycle (the endpoints of the
    /// oscillating wires), in instance-id order.
    pub cycle: Vec<String>,
}

impl fmt::Display for DivergenceInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {}: no fixed point after {} reactions (limit {});",
            self.step, self.iters, self.limit
        )?;
        if self.oscillating.is_empty() {
            write!(f, " no oscillating wire identified")?;
        } else {
            write!(f, " oscillating:")?;
            for w in &self.oscillating {
                write!(
                    f,
                    " {}->{} edge {} {} ({} flips)",
                    w.src, w.dst, w.edge, w.wire, w.flips
                )?;
            }
        }
        if !self.cycle.is_empty() {
            write!(f, "; cycle: {}", self.cycle.join(" -> "))?;
        }
        Ok(())
    }
}

/// Structured payload of [`SimError::Checkpoint`]: why a checkpoint blob
/// was rejected. Each corruption class gets its own variant so tooling
/// (and the broken-checkpoint corpus tests) can assert on the diagnosis,
/// not on message wording.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The file does not start with the checkpoint magic bytes.
    BadMagic {
        /// The first bytes actually found (up to 4).
        found: Vec<u8>,
    },
    /// The format version is not one this build can read.
    VersionMismatch {
        /// Version stamped in the file.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The CRC32 over the payload does not match the stored checksum.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum recomputed over the payload.
        computed: u32,
    },
    /// The blob ends before the declared payload and trailer.
    Truncated {
        /// Bytes the header/fields declared.
        needed: u64,
        /// Bytes actually present.
        available: u64,
    },
    /// The envelope is intact (magic/version/checksum pass) but a field
    /// inside decodes to something impossible, or the snapshot does not
    /// fit the simulator it is being restored into (instance/edge census
    /// mismatch, module state blob rejected).
    Malformed(String),
    /// The checkpoint file could not be read or written; carries the
    /// offending path so a host juggling several checkpoint directories
    /// can tell which file failed.
    Io {
        /// The file (or directory) the I/O operation targeted.
        path: std::path::PathBuf,
        /// The rendered `std::io::Error`.
        msg: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (not a checkpoint file)")
            }
            CheckpointError::VersionMismatch { found, expected } => {
                write!(f, "format version {found} (this build reads {expected})")
            }
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CheckpointError::Truncated { needed, available } => {
                write!(f, "truncated: need {needed} bytes, have {available}")
            }
            CheckpointError::Malformed(m) => write!(f, "malformed: {m}"),
            CheckpointError::Io { path, msg } => write!(f, "io: {}: {msg}", path.display()),
        }
    }
}

/// Structured payload of [`SimError::Panic`]: a module handler panicked
/// and the failure policy was to abort.
#[derive(Debug, Clone, PartialEq)]
pub struct PanicInfo {
    /// Name of the instance whose handler panicked.
    pub instance: String,
    /// Time-step of the panic.
    pub step: u64,
    /// The panic payload, rendered (`&str`/`String` payloads verbatim).
    pub message: String,
}

/// Any error produced by the kernel or by a module during simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A module violated the three-signal communication contract
    /// (non-monotonic write, drive of a wire it does not own, ...).
    Contract(String),
    /// A port name or index did not resolve against a module's spec.
    Port(String),
    /// Netlist construction error: width/direction/connectivity problems.
    Netlist(String),
    /// A module received a value of an unexpected dynamic type.
    Type(String),
    /// A template parameter was missing or had the wrong type.
    Param(String),
    /// Specification elaboration error (LSS front end).
    Elab(String),
    /// A module reported a model-level failure.
    Model(String),
    /// The reaction phase failed to converge within the watchdog's
    /// per-step iteration budget; the payload names the oscillating
    /// wires and the resolution cycle.
    Divergence(Box<DivergenceInfo>),
    /// A module handler panicked under [`FailurePolicy::Abort`]
    /// (`FailurePolicy` lives in `crate::fault`).
    Panic(Box<PanicInfo>),
    /// A checkpoint blob was rejected: corrupted on disk or incompatible
    /// with the simulator being restored (`crate::snapshot`).
    Checkpoint(Box<CheckpointError>),
    /// A kernel invariant was violated (a bug in the kernel, not in a
    /// model); reported instead of panicking so long soaks fail softly.
    Internal(String),
}

impl SimError {
    /// Construct a contract-violation error.
    pub fn contract(msg: impl Into<String>) -> Self {
        SimError::Contract(msg.into())
    }

    /// Construct a port-resolution error.
    pub fn port(msg: impl Into<String>) -> Self {
        SimError::Port(msg.into())
    }

    /// Construct a netlist-construction error.
    pub fn netlist(msg: impl Into<String>) -> Self {
        SimError::Netlist(msg.into())
    }

    /// Construct a dynamic-type error.
    pub fn type_err(msg: impl Into<String>) -> Self {
        SimError::Type(msg.into())
    }

    /// Construct a parameter error.
    pub fn param(msg: impl Into<String>) -> Self {
        SimError::Param(msg.into())
    }

    /// Construct an elaboration error.
    pub fn elab(msg: impl Into<String>) -> Self {
        SimError::Elab(msg.into())
    }

    /// Construct a model-level error.
    pub fn model(msg: impl Into<String>) -> Self {
        SimError::Model(msg.into())
    }

    /// Construct a kernel-invariant error.
    pub fn internal(msg: impl Into<String>) -> Self {
        SimError::Internal(msg.into())
    }

    /// The divergence payload, when this is a watchdog error.
    pub fn as_divergence(&self) -> Option<&DivergenceInfo> {
        match self {
            SimError::Divergence(d) => Some(d),
            _ => None,
        }
    }

    /// The panic payload, when this is an aborted handler panic.
    pub fn as_panic(&self) -> Option<&PanicInfo> {
        match self {
            SimError::Panic(p) => Some(p),
            _ => None,
        }
    }

    /// Construct a checkpoint-rejection error.
    pub fn checkpoint(e: CheckpointError) -> Self {
        SimError::Checkpoint(Box::new(e))
    }

    /// The checkpoint payload, when this is a rejected checkpoint.
    pub fn as_checkpoint(&self) -> Option<&CheckpointError> {
        match self {
            SimError::Checkpoint(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Contract(m) => write!(f, "contract violation: {m}"),
            SimError::Port(m) => write!(f, "port error: {m}"),
            SimError::Netlist(m) => write!(f, "netlist error: {m}"),
            SimError::Type(m) => write!(f, "type error: {m}"),
            SimError::Param(m) => write!(f, "parameter error: {m}"),
            SimError::Elab(m) => write!(f, "elaboration error: {m}"),
            SimError::Model(m) => write!(f, "model error: {m}"),
            SimError::Divergence(d) => write!(f, "divergence: {d}"),
            SimError::Panic(p) => write!(
                f,
                "panic in {} at step {}: {}",
                p.instance, p.step, p.message
            ),
            SimError::Checkpoint(c) => write!(f, "checkpoint rejected: {c}"),
            SimError::Internal(m) => write!(f, "internal kernel error: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category() {
        assert!(SimError::contract("x").to_string().contains("contract"));
        assert!(SimError::port("x").to_string().contains("port"));
        assert!(SimError::netlist("x").to_string().contains("netlist"));
        assert!(SimError::type_err("x").to_string().contains("type"));
        assert!(SimError::param("x").to_string().contains("parameter"));
        assert!(SimError::elab("x").to_string().contains("elaboration"));
        assert!(SimError::model("x").to_string().contains("model"));
        assert!(SimError::internal("x").to_string().contains("internal"));
    }

    #[test]
    fn divergence_display_names_wires_and_cycle() {
        let e = SimError::Divergence(Box::new(DivergenceInfo {
            step: 3,
            iters: 1001,
            limit: 1000,
            oscillating: vec![OscillatingWire {
                edge: 7,
                wire: "data",
                src: "a".into(),
                dst: "b".into(),
                flips: 12,
            }],
            cycle: vec!["a".into(), "b".into()],
        }));
        let s = e.to_string();
        assert!(s.contains("edge 7"), "{s}");
        assert!(s.contains("data"), "{s}");
        assert!(s.contains("a -> b"), "{s}");
        assert!(e.as_divergence().is_some());
        assert!(e.as_panic().is_none());
    }

    #[test]
    fn checkpoint_display_names_corruption_class() {
        let cases: Vec<(CheckpointError, &str)> = vec![
            (CheckpointError::BadMagic { found: vec![0, 1] }, "magic"),
            (
                CheckpointError::VersionMismatch {
                    found: 9,
                    expected: 1,
                },
                "version 9",
            ),
            (
                CheckpointError::ChecksumMismatch {
                    stored: 1,
                    computed: 2,
                },
                "checksum",
            ),
            (
                CheckpointError::Truncated {
                    needed: 10,
                    available: 3,
                },
                "truncated",
            ),
            (CheckpointError::Malformed("bad tag".into()), "bad tag"),
        ];
        for (c, needle) in cases {
            let e = SimError::checkpoint(c);
            let s = e.to_string();
            assert!(s.contains("checkpoint rejected"), "{s}");
            assert!(s.contains(needle), "{s} should contain {needle}");
            assert!(e.as_checkpoint().is_some());
        }
        assert!(SimError::internal("x").as_checkpoint().is_none());
    }

    #[test]
    fn panic_display_names_instance_and_step() {
        let e = SimError::Panic(Box::new(PanicInfo {
            instance: "q0".into(),
            step: 9,
            message: "boom".into(),
        }));
        let s = e.to_string();
        assert!(
            s.contains("q0") && s.contains('9') && s.contains("boom"),
            "{s}"
        );
        assert!(e.as_panic().is_some());
    }
}
