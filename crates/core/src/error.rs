//! Error types for netlist construction, elaboration and simulation.

use std::fmt;

/// Any error produced by the kernel or by a module during simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A module violated the three-signal communication contract
    /// (non-monotonic write, drive of a wire it does not own, ...).
    Contract(String),
    /// A port name or index did not resolve against a module's spec.
    Port(String),
    /// Netlist construction error: width/direction/connectivity problems.
    Netlist(String),
    /// A module received a value of an unexpected dynamic type.
    Type(String),
    /// A template parameter was missing or had the wrong type.
    Param(String),
    /// Specification elaboration error (LSS front end).
    Elab(String),
    /// A module reported a model-level failure.
    Model(String),
}

impl SimError {
    /// Construct a contract-violation error.
    pub fn contract(msg: impl Into<String>) -> Self {
        SimError::Contract(msg.into())
    }

    /// Construct a port-resolution error.
    pub fn port(msg: impl Into<String>) -> Self {
        SimError::Port(msg.into())
    }

    /// Construct a netlist-construction error.
    pub fn netlist(msg: impl Into<String>) -> Self {
        SimError::Netlist(msg.into())
    }

    /// Construct a dynamic-type error.
    pub fn type_err(msg: impl Into<String>) -> Self {
        SimError::Type(msg.into())
    }

    /// Construct a parameter error.
    pub fn param(msg: impl Into<String>) -> Self {
        SimError::Param(msg.into())
    }

    /// Construct an elaboration error.
    pub fn elab(msg: impl Into<String>) -> Self {
        SimError::Elab(msg.into())
    }

    /// Construct a model-level error.
    pub fn model(msg: impl Into<String>) -> Self {
        SimError::Model(msg.into())
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Contract(m) => write!(f, "contract violation: {m}"),
            SimError::Port(m) => write!(f, "port error: {m}"),
            SimError::Netlist(m) => write!(f, "netlist error: {m}"),
            SimError::Type(m) => write!(f, "type error: {m}"),
            SimError::Param(m) => write!(f, "parameter error: {m}"),
            SimError::Elab(m) => write!(f, "elaboration error: {m}"),
            SimError::Model(m) => write!(f, "model error: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category() {
        assert!(SimError::contract("x").to_string().contains("contract"));
        assert!(SimError::port("x").to_string().contains("port"));
        assert!(SimError::netlist("x").to_string().contains("netlist"));
        assert!(SimError::type_err("x").to_string().contains("type"));
        assert!(SimError::param("x").to_string().contains("parameter"));
        assert!(SimError::elab("x").to_string().contains("elaboration"));
        assert!(SimError::model("x").to_string().contains("model"));
    }
}
