//! A small owned worker pool for the level-parallel compiled scheduler.
//!
//! The pool exists because the parallel scheduler runs many short level
//! bursts per time-step: spawning OS threads per level (as
//! `std::thread::scope` would) costs more than the work. Instead a fixed
//! set of workers is spawned once and fed borrowed closures per burst.
//!
//! Safety model: `run` erases the closure lifetimes to ship `&mut dyn
//! FnMut` references through a channel, which is only sound because `run`
//! does not return until every dispatched worker has reported completion
//! — the borrows therefore strictly outlive their use. Worker panics are
//! caught on the worker, carried back as payloads, and surfaced to the
//! caller (who re-raises after restoring state). This is the single
//! `unsafe` island of the crate.
//!
//! Cancellation model: the pool needs no cancellation hooks of its own.
//! Run governance ([`crate::supervisor`]) is cooperative and only checks
//! its [`crate::supervisor::CancelToken`] at *step* boundaries, and
//! `run`'s completion barrier guarantees a step never returns with a
//! burst still in flight — so a cancelled level-parallel run always
//! drains its dispatched partitions cleanly before the governed loop
//! observes the token and checkpoints. No worker is ever abandoned
//! mid-closure.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A panic payload carried back from a worker.
pub type Payload = Box<dyn std::any::Any + Send + 'static>;

/// A type-erased borrowed task. The pointee is a `&mut dyn FnMut()` whose
/// real lifetime is the duration of one `run` call; `run`'s barrier makes
/// the `'static` lie safe.
struct Job(*mut (dyn FnMut() + Send + 'static));
// SAFETY: the pointee is `Send` (bound on the trait object) and the
// pointer is dereferenced by exactly one worker, once, inside the window
// where the caller's borrow is alive (enforced by `run`'s completion
// barrier).
unsafe impl Send for Job {}

struct Worker {
    job_tx: Option<Sender<Job>>,
    done_rx: Receiver<Option<Payload>>,
    handle: Option<JoinHandle<()>>,
}

/// A fixed-size pool of named worker threads executing borrowed closures.
///
/// Public because it serves two masters: the level-parallel compiled
/// scheduler (short bursts within one step) and the ensemble runner
/// (`liberty-ensemble`), which uses the same lanes to run whole replicas
/// concurrently.
pub struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// Spawn `n` workers (the caller's thread is an implicit extra lane,
    /// so the pool supports `n + 1`-way parallelism).
    pub fn new(n: usize) -> WorkerPool {
        let workers = (0..n)
            .map(|i| {
                let (job_tx, job_rx) = channel::<Job>();
                let (done_tx, done_rx) = channel::<Option<Payload>>();
                let handle = std::thread::Builder::new()
                    .name(format!("liberty-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = job_rx.recv() {
                            // SAFETY: see `Job` — the borrow is alive
                            // until we send the completion signal below.
                            let f = unsafe { &mut *job.0 };
                            let r = catch_unwind(AssertUnwindSafe(f));
                            if done_tx.send(r.err()).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn worker thread");
                Worker {
                    job_tx: Some(job_tx),
                    done_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        WorkerPool { workers }
    }

    /// Maximum tasks one `run` call can execute in parallel (workers plus
    /// the calling thread).
    pub fn capacity(&self) -> usize {
        self.workers.len() + 1
    }

    /// Execute the tasks concurrently: task 0 on the calling thread, the
    /// rest on workers. Blocks until **all** tasks finish, then returns
    /// one entry per task — `None` for clean completion, `Some(payload)`
    /// for a panic (re-raise with `std::panic::resume_unwind` once shared
    /// state is consistent again).
    pub fn run<'env>(
        &mut self,
        tasks: &mut [&mut (dyn FnMut() + Send + 'env)],
    ) -> Vec<Option<Payload>> {
        assert!(
            tasks.len() <= self.capacity(),
            "pool of {} lanes given {} tasks",
            self.capacity(),
            tasks.len()
        );
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let mut results: Vec<Option<Payload>> = Vec::with_capacity(n);
        let (first, rest) = tasks.split_at_mut(1);
        for (w, t) in self.workers.iter().zip(rest.iter_mut()) {
            let raw: *mut (dyn FnMut() + Send + 'env) = &mut **t;
            // SAFETY: lifetime erasure only — the barrier below keeps the
            // borrow alive for the whole execution window.
            let raw: *mut (dyn FnMut() + Send + 'static) = unsafe { std::mem::transmute(raw) };
            w.job_tx
                .as_ref()
                .expect("pool not shut down")
                .send(Job(raw))
                .expect("worker alive");
        }
        // Caller lane runs task 0 while the workers run the rest.
        results.push(catch_unwind(AssertUnwindSafe(&mut *first[0])).err());
        // Completion barrier: every dispatched task must report before the
        // borrows in `tasks` may expire. A worker that died (channel
        // closed) counts as a panic already captured at join time.
        for w in self.workers.iter().take(n - 1) {
            let r = w
                .done_rx
                .recv()
                .unwrap_or_else(|_| Some(Box::new("worker thread died".to_string())));
            results.push(r);
        }
        results
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for w in &mut self.workers {
            w.job_tx.take(); // closing the channel ends the worker loop
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_sum_across_lanes() {
        let mut pool = WorkerPool::new(3);
        assert_eq!(pool.capacity(), 4);
        let mut parts = [0u64; 4];
        {
            let mut tasks: Vec<Box<dyn FnMut() + Send>> = parts
                .iter_mut()
                .enumerate()
                .map(|(i, p)| {
                    Box::new(move || {
                        *p = (0..=1000u64).map(|x| x + i as u64).sum();
                    }) as Box<dyn FnMut() + Send>
                })
                .collect();
            let mut refs: Vec<&mut (dyn FnMut() + Send)> =
                tasks.iter_mut().map(|b| &mut **b).collect();
            let panics = pool.run(&mut refs);
            assert!(panics.iter().all(|p| p.is_none()));
        }
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(*p, (0..=1000u64).map(|x| x + i as u64).sum::<u64>());
        }
    }

    #[test]
    fn panic_payload_comes_back_and_pool_survives() {
        let mut pool = WorkerPool::new(1);
        let mut ok = false;
        {
            let mut t0: Box<dyn FnMut() + Send> = Box::new(|| {});
            let mut t1: Box<dyn FnMut() + Send> = Box::new(|| panic!("boom 17"));
            let mut refs: Vec<&mut (dyn FnMut() + Send)> = vec![&mut *t0, &mut *t1];
            let panics = pool.run(&mut refs);
            assert!(panics[0].is_none());
            let p = panics.into_iter().nth(1).unwrap().expect("panic captured");
            let msg = p.downcast_ref::<&str>().copied().unwrap_or("");
            assert!(msg.contains("boom 17"), "{msg}");
        }
        // The pool is reusable after a worker panic.
        {
            let mut t0: Box<dyn FnMut() + Send> = Box::new(|| ok = true);
            let mut t1: Box<dyn FnMut() + Send> = Box::new(|| {});
            let mut refs: Vec<&mut (dyn FnMut() + Send)> = vec![&mut *t0, &mut *t1];
            let panics = pool.run(&mut refs);
            assert!(panics.iter().all(|p| p.is_none()));
        }
        assert!(ok);
    }

    #[test]
    fn zero_and_single_task_runs() {
        let mut pool = WorkerPool::new(2);
        assert!(pool.run(&mut []).is_empty());
        let mut hit = false;
        let mut t: Box<dyn FnMut() + Send> = Box::new(|| hit = true);
        let mut refs: Vec<&mut (dyn FnMut() + Send)> = vec![&mut *t];
        let panics = pool.run(&mut refs);
        assert_eq!(panics.len(), 1);
        drop(refs);
        drop(t);
        assert!(hit);
    }
}
