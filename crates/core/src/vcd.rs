//! VCD (Value Change Dump) waveform sink — watch the three-signal
//! handshake evolve in GTKWave.
//!
//! Every connection contributes three waveform signals: a 64-bit `data`
//! vector plus 1-bit `enable` and `ack` wires. Scopes mirror the
//! elaborated instance hierarchy (dotted instance paths become nested
//! `$scope module` blocks), and each edge's signals live under its
//! *sender*'s scope, named `<port><index>__<wire>__e<edge>`.
//!
//! Encoding of the paper's resolution states:
//!
//! * `enable` / `ack`: `1` = resolved `Yes`, `0` = resolved `No` (wires
//!   always fully resolve by the end of a step, so `x` only appears
//!   before the first step);
//! * `data`: the word payload when `Yes` (non-word payloads are
//!   fingerprinted to 64 bits so distinct values stay distinguishable),
//!   all-`z` when resolved `No` — "not driven" is exactly the default
//!   control semantics of an absent sender (paper §2.2).
//!
//! One timestamp is emitted per time-step (`#<now>` at `step_end`), so
//! timestamps increase strictly monotonically; only changed signals are
//! dumped, keeping files compact on quiet netlists.
//!
//! Writes are line-oriented, so a slow or stalled consumer can be
//! decoupled with bounded buffering by constructing the probe over a
//! [`crate::supervisor::BackpressureWriter`]: `VcdProbe::new(
//! BackpressureWriter::new(out, cap, SinkPolicy::Block))`. Note that
//! `DropOldest` sheds whole *lines*, which for VCD means lost value
//! changes — acceptable for live monitoring, not for golden files.

use crate::netlist::EdgeId;
use crate::probe::{Probe, ResolvedBy};
use crate::signal::Wire;
use crate::topology::Topology;
use crate::value::Value;
use std::collections::BTreeMap;
use std::io::Write;

/// Per-wire last-emitted / pending state.
#[derive(Clone, Copy, PartialEq, Eq)]
enum WireVal {
    /// Never driven (before the first resolution) — VCD `x`.
    X,
    /// Resolved `No`.
    No,
    /// Resolved `Yes` (with the data payload for data wires).
    Yes(u64),
}

struct EdgeVars {
    /// VCD identifier codes for (data, enable, ack).
    codes: [String; 3],
    /// Last emitted value per wire.
    last: [WireVal; 3],
    /// Value resolved in the current step, if any.
    cur: [Option<WireVal>; 3],
}

/// The VCD-writing probe. Construct with [`VcdProbe::new`] over any
/// writer (buffer it for files), attach with
/// [`crate::exec::Simulator::set_probe`]; the header is emitted at attach
/// time and the output is flushed when the probe is dropped.
pub struct VcdProbe<W: Write + Send> {
    out: W,
    edges: Vec<EdgeVars>,
    /// Edge ids touched this step (kept sorted at dump time so output is
    /// scheduler-independent).
    touched: Vec<u32>,
}

/// Map a payload to the 64 bits shown on the waveform.
fn data_bits(v: &Value) -> u64 {
    if let Some(w) = v.as_word() {
        return w;
    }
    // Fingerprint non-word payloads (tuples, packets, instructions...)
    // so distinct values render as distinct vectors: FNV-1a over the
    // display rendering.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in v.to_string().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Compact printable VCD identifier for var number `n` (base-94 over
/// ASCII 33..=126).
fn id_code(mut n: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            return s;
        }
    }
}

/// Make a name safe as a VCD identifier component. Array indices keep a
/// readable form: `st[0]` becomes `st_0`.
fn sanitize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            c if c.is_ascii_alphanumeric() => out.push(c),
            ']' => {}
            _ => out.push('_'),
        }
    }
    out
}

/// A scope tree node: child scopes plus `$var` declarations at this
/// level, rendered as `(reference, id_code)` pairs.
#[derive(Default)]
struct Scope {
    children: BTreeMap<String, Scope>,
    vars: Vec<(String, String, u32)>, // (reference, id code, bit width)
}

impl Scope {
    fn write<W: Write>(&self, out: &mut W, indent: usize) -> std::io::Result<()> {
        let pad = "  ".repeat(indent);
        for (reference, code, width) in &self.vars {
            let kind = if *width == 1 { "wire" } else { "reg" };
            writeln!(out, "{pad}$var {kind} {width} {code} {reference} $end")?;
        }
        for (name, child) in &self.children {
            writeln!(out, "{pad}$scope module {name} $end")?;
            child.write(out, indent + 1)?;
            writeln!(out, "{pad}$upscope $end")?;
        }
        Ok(())
    }
}

impl<W: Write + Send> VcdProbe<W> {
    /// Waveform sink over any writer. Wrap files in a
    /// `std::io::BufWriter`; the probe flushes on drop.
    pub fn new(out: W) -> Self {
        VcdProbe {
            out,
            edges: Vec::new(),
            touched: Vec::new(),
        }
    }

    fn wire_index(wire: Wire) -> usize {
        match wire {
            Wire::Data => 0,
            Wire::Enable => 1,
            Wire::Ack => 2,
        }
    }

    fn emit(out: &mut W, val: WireVal, code: &str, is_data: bool) {
        let _ = if is_data {
            match val {
                WireVal::X => writeln!(out, "bx {code}"),
                WireVal::No => writeln!(out, "bz {code}"),
                WireVal::Yes(w) => writeln!(out, "b{w:b} {code}"),
            }
        } else {
            match val {
                WireVal::X => writeln!(out, "x{code}"),
                WireVal::No => writeln!(out, "0{code}"),
                WireVal::Yes(_) => writeln!(out, "1{code}"),
            }
        };
    }
}

impl VcdProbe<std::io::BufWriter<std::fs::File>> {
    /// Create (truncate) a `.vcd` file and buffer writes to it.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(VcdProbe::new(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }
}

impl<W: Write + Send> Probe for VcdProbe<W> {
    fn attach(&mut self, topo: &Topology) {
        // Assign id codes and build the scope tree mirroring the
        // elaborated hierarchy.
        let mut root = Scope::default();
        let mut var_n = 0usize;
        self.edges.clear();
        for (ei, em) in topo.edge_metas().iter().enumerate() {
            let src = topo.instance(em.src.inst);
            let port = sanitize(&src.spec.port_spec(em.src.port).name);
            let mut node = &mut root;
            for part in src.name.split('.') {
                node = node.children.entry(sanitize(part)).or_default();
            }
            let mut codes: [String; 3] = Default::default();
            for (wi, wire) in ["data", "enable", "ack"].iter().enumerate() {
                let code = id_code(var_n);
                var_n += 1;
                let width = if wi == 0 { 64 } else { 1 };
                node.vars.push((
                    format!("{port}{}__{wire}__e{ei}", em.src.index),
                    code.clone(),
                    width,
                ));
                codes[wi] = code;
            }
            self.edges.push(EdgeVars {
                codes,
                last: [WireVal::X; 3],
                cur: [None; 3],
            });
        }
        let out = &mut self.out;
        let _ = writeln!(out, "$version liberty-rs kernel probe $end");
        let _ = writeln!(
            out,
            "$comment {} instances, {} connections; one timestep = 1ns $end",
            topo.instance_count(),
            topo.edge_count()
        );
        let _ = writeln!(out, "$timescale 1 ns $end");
        let _ = root.write(out, 0);
        let _ = writeln!(out, "$enddefinitions $end");
        // Initial dump: everything unknown until the first step resolves.
        let _ = writeln!(out, "$dumpvars");
        for ev in &self.edges {
            Self::emit(out, WireVal::X, &ev.codes[0], true);
            Self::emit(out, WireVal::X, &ev.codes[1], false);
            Self::emit(out, WireVal::X, &ev.codes[2], false);
        }
        let _ = writeln!(out, "$end");
    }

    fn signal_resolved(
        &mut self,
        _now: u64,
        edge: EdgeId,
        wire: Wire,
        yes: bool,
        value: Option<&Value>,
        _by: ResolvedBy,
    ) {
        let ev = &mut self.edges[edge.0 as usize];
        let val = if yes {
            WireVal::Yes(value.map(data_bits).unwrap_or(1))
        } else {
            WireVal::No
        };
        if ev.cur.iter().all(Option::is_none) {
            self.touched.push(edge.0);
        }
        ev.cur[Self::wire_index(wire)] = Some(val);
    }

    fn step_end(&mut self, now: u64) {
        let _ = writeln!(self.out, "#{now}");
        self.touched.sort_unstable();
        for &ei in &self.touched {
            let ev = &mut self.edges[ei as usize];
            for wi in 0..3 {
                if let Some(val) = ev.cur[wi].take() {
                    if val != ev.last[wi] {
                        Self::emit(&mut self.out, val, &ev.codes[wi], wi == 0);
                        ev.last[wi] = val;
                    }
                }
            }
        }
        self.touched.clear();
    }
}

impl<W: Write + Send> Drop for VcdProbe<W> {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;
    use crate::exec::{CommitCtx, ReactCtx, SchedKind, Simulator};
    use crate::module::{Module, ModuleSpec, PortId};
    use crate::netlist::NetlistBuilder;
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    struct EvenSrc;
    impl Module for EvenSrc {
        fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
            if ctx.now().is_multiple_of(2) {
                ctx.send(PortId(0), 0, Value::Word(ctx.now()))
            } else {
                ctx.send_nothing(PortId(0), 0)
            }
        }
        fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
    }
    struct Snk;
    impl Module for Snk {
        fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError> {
            ctx.set_ack(PortId(0), 0, true)
        }
        fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
    }

    fn sim_with_vcd() -> (Simulator, Shared) {
        let mut b = NetlistBuilder::new();
        let s = b
            .add(
                "top.s",
                ModuleSpec::new("esrc").output("out", 1, 1),
                Box::new(EvenSrc),
            )
            .unwrap();
        let k = b
            .add(
                "top.k",
                ModuleSpec::new("snk").input("in", 1, 1),
                Box::new(Snk),
            )
            .unwrap();
        b.connect(s, "out", k, "in").unwrap();
        let mut sim = Simulator::new(b.build().unwrap(), SchedKind::Dynamic);
        let buf = Shared::default();
        sim.set_probe(Box::new(VcdProbe::new(buf.clone())));
        (sim, buf)
    }

    #[test]
    fn header_mirrors_hierarchy_and_declares_three_vars_per_edge() {
        let (sim, buf) = sim_with_vcd();
        drop(sim);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("$timescale 1 ns $end"), "{text}");
        assert!(text.contains("$scope module top $end"), "{text}");
        assert!(
            text.contains("$scope module s $end"),
            "dotted name → nested scope: {text}"
        );
        assert_eq!(text.matches("$var ").count(), 3, "{text}");
        assert!(text.contains("out0__data__e0"), "{text}");
        assert!(text.contains("out0__enable__e0"), "{text}");
        assert!(text.contains("out0__ack__e0"), "{text}");
        assert!(text.contains("$enddefinitions $end"), "{text}");
    }

    #[test]
    fn timestamps_monotone_and_changes_dumped() {
        let (mut sim, buf) = sim_with_vcd();
        sim.run(4).unwrap();
        drop(sim);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let stamps: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with('#'))
            .map(|l| l[1..].parse().unwrap())
            .collect();
        assert_eq!(stamps, vec![0, 1, 2, 3]);
        // Step 0 sends word 0 → data b0, enable 1; step 1 sends nothing →
        // data z, enable 0. The waveform must show both regimes.
        assert!(text.contains("b0 !"), "data word at t0: {text}");
        assert!(text.contains("bz !"), "undriven data at t1: {text}");
        // Ack resolves Yes every step and must be dumped only once
        // (change-only output): '1' then silence.
        let ack_changes = text.lines().filter(|l| *l == "1#").count();
        assert_eq!(ack_changes, 1, "{text}");
    }

    #[test]
    fn id_codes_cover_multi_char_range() {
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!\"");
        assert_ne!(id_code(94 * 94 + 7), id_code(7));
    }
}
