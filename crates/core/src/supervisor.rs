//! Run governance: budgets, deadlines, cancellation, retry/backoff and
//! bounded sink backpressure.
//!
//! The paper's position (§1, §5) is that a fixed, analyzable MoC lets
//! the *engine* own execution policy so models stay composable. The
//! fault-injection pass made module failure survivable and the
//! checkpoint pass made runs rewindable; this module governs a run *as a
//! whole*: what it may consume ([`RunBudget`]), when it must stop
//! ([`CancelToken`]), how failure recovery escalates ([`RetryPolicy`])
//! and what every exit path reports ([`RunReport`]).
//!
//! Everything here is enforced **cooperatively at step boundaries** by
//! [`crate::exec::Simulator::run_governed`]. A simulator with no
//! governance installed carries a single `None` and `run` checks it once
//! per call — the monomorphized reaction/commit hot loops never see any
//! of this, exactly like the checkpoint machinery (see
//! `docs/ROBUSTNESS.md` §9).
//!
//! The escalation ladder on failure, most specific remedy first:
//!
//! 1. **retry from checkpoint** — restore the last snapshot and replay,
//!    with exponential backoff between attempts;
//! 2. **mask the offending fault/edge** — rollback masks the fault-plan
//!    entries that explain the failure, so the replay does not re-inject
//!    it;
//! 3. **quarantine the instance** — when retries are exhausted (or the
//!    failure is organic and would replay identically) the instance
//!    stays isolated and the run continues around it;
//! 4. **degrade to partial results** — the run reaches its target with a
//!    non-empty quarantine set and reports [`RunOutcome::Degraded`]
//!    instead of failing.

use crate::error::SimError;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------
// Budgets
// ---------------------------------------------------------------------

/// A user-supplied memory gauge: returns the bytes currently in use.
/// Typically wired to a counting global allocator (the pattern in
/// `crates/bench/tests/alloc.rs`); the supervisor polls it once per step
/// boundary and records the peak.
pub type MemoryGauge = Arc<dyn Fn() -> u64 + Send + Sync>;

/// Cooperative resource budget for a governed run. Every axis is
/// optional; an unset axis costs nothing. Enforced at step boundaries
/// only — a budget can never tear a time-step in half.
#[derive(Clone, Debug, Default)]
pub struct RunBudget {
    /// Maximum time-steps this run call may execute (replayed steps
    /// after a rollback count: the budget bounds *work*, not progress).
    pub max_steps: Option<u64>,
    /// Wall-clock deadline, measured from the start of the run call.
    pub deadline: Option<Duration>,
    /// Memory ceiling in bytes, polled through the installed
    /// [`MemoryGauge`] (no gauge ⇒ the axis is never checked).
    pub max_memory_bytes: Option<u64>,
    /// Maximum instances the run may quarantine before stopping.
    pub max_quarantined: Option<u64>,
}

impl RunBudget {
    /// An unlimited budget (every axis unset).
    pub fn new() -> Self {
        RunBudget::default()
    }

    /// Cap the steps executed by one run call.
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = Some(n);
        self
    }

    /// Set a wall-clock deadline for the run call.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Set the memory ceiling (requires a gauge, see
    /// [`crate::exec::Simulator::set_memory_gauge`]).
    pub fn max_memory_bytes(mut self, bytes: u64) -> Self {
        self.max_memory_bytes = Some(bytes);
        self
    }

    /// Cap the quarantine set size.
    pub fn max_quarantined(mut self, n: u64) -> Self {
        self.max_quarantined = Some(n);
        self
    }

    /// True when no axis is set (the budget can never trip).
    pub fn is_unlimited(&self) -> bool {
        self.max_steps.is_none()
            && self.deadline.is_none()
            && self.max_memory_bytes.is_none()
            && self.max_quarantined.is_none()
    }
}

/// Which [`RunBudget`] axis was exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    /// `max_steps` reached.
    Steps,
    /// The wall-clock `deadline` passed.
    Deadline,
    /// The memory gauge read past `max_memory_bytes`.
    Memory,
    /// More than `max_quarantined` instances are isolated.
    Quarantine,
}

impl BudgetKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            BudgetKind::Steps => "steps",
            BudgetKind::Deadline => "deadline",
            BudgetKind::Memory => "memory",
            BudgetKind::Quarantine => "quarantine",
        }
    }
}

// ---------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------

/// A cheap, cloneable cancellation flag. Trip it from any thread (or a
/// signal handler, via [`CancelToken::from_static`]) and the governed
/// run loop notices at the next step boundary, drains in-flight work —
/// the level-parallel scheduler's completion barrier guarantees no
/// partition is abandoned mid-burst — takes a final checkpoint and
/// returns a [`RunReport`] with [`RunOutcome::Cancelled`].
#[derive(Clone)]
pub struct CancelToken {
    flag: Flag,
}

#[derive(Clone)]
enum Flag {
    Shared(Arc<AtomicBool>),
    /// Backed by caller-owned static storage, so an async-signal handler
    /// can trip the token without touching the allocator.
    Static(&'static AtomicBool),
}

impl CancelToken {
    /// A fresh, un-tripped token.
    pub fn new() -> Self {
        CancelToken {
            flag: Flag::Shared(Arc::new(AtomicBool::new(false))),
        }
    }

    /// Wrap a static flag (e.g. one a SIGINT handler stores to).
    pub fn from_static(flag: &'static AtomicBool) -> Self {
        CancelToken {
            flag: Flag::Static(flag),
        }
    }

    fn cell(&self) -> &AtomicBool {
        match &self.flag {
            Flag::Shared(a) => a,
            Flag::Static(s) => s,
        }
    }

    /// Request cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.cell().store(true, Ordering::SeqCst);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.cell().load(Ordering::SeqCst)
    }

    /// Clear the flag (e.g. to reuse a static token across runs).
    pub fn reset(&self) {
        self.cell().store(false, Ordering::SeqCst);
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------

/// What triggered a retry-from-checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RetryCause {
    /// A step quarantined at least one fresh instance.
    Quarantine,
    /// A step died with [`SimError::Divergence`].
    Divergence,
}

impl RetryCause {
    /// Stable label (the key of [`RunReport::retries`]).
    pub fn label(self) -> &'static str {
        match self {
            RetryCause::Quarantine => "quarantine",
            RetryCause::Divergence => "divergence",
        }
    }
}

/// How failure recovery escalates, generalizing the checkpoint pass's
/// hardcoded rollback-retry-once: a bounded number of retries, a
/// per-cause cap, and exponential backoff with seeded jitter between
/// attempts. Install with [`crate::exec::Simulator::set_retry_policy`]
/// (which also requires rollback to be armed — retries restore the last
/// checkpoint).
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total retries across the whole run call; exhausting this budget
    /// escalates the next failure down the ladder (quarantine stands /
    /// error surfaces).
    pub max_retries: u64,
    /// Retries per individual cause (one instance, one edge). The
    /// default 1 reproduces the original retry-once behaviour: a second
    /// failure of the same instance is organic — it replays identically,
    /// so retrying again would loop forever.
    pub per_cause: u32,
    /// Base of the exponential backoff between retries: attempt *k*
    /// sleeps `base * 2^(k-1)` (capped at `max_backoff`), plus jitter.
    /// The default `0` disables sleeping entirely, which keeps
    /// single-threaded deterministic tests fast — backoff only delays
    /// the host, never the simulated clock.
    pub base_backoff: Duration,
    /// Upper bound on one backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the jitter term (deterministic: same seed, same delays).
    /// Jitter is drawn uniformly from `[0, backoff/2]`.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 16,
            per_cause: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::from_secs(1),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_retries` total attempts and the defaults
    /// elsewhere.
    pub fn with_max_retries(n: u64) -> Self {
        RetryPolicy {
            max_retries: n,
            ..RetryPolicy::default()
        }
    }

    /// The host-side delay before retry number `attempt` (1-based):
    /// exponential in the attempt, capped, with seeded jitter.
    pub fn backoff_for(&self, attempt: u64) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let shift = attempt.saturating_sub(1).min(16) as u32;
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << shift)
            .min(self.max_backoff);
        // Deterministic jitter in [0, exp/2]: splitmix over (seed, attempt).
        let half = exp.as_nanos() as u64 / 2;
        let jitter = if half == 0 {
            0
        } else {
            crate::fault::splitmix(self.jitter_seed.wrapping_add(attempt)) % (half + 1)
        };
        (exp + Duration::from_nanos(jitter)).min(self.max_backoff)
    }
}

// ---------------------------------------------------------------------
// Run reports
// ---------------------------------------------------------------------

/// How a governed run ended.
#[derive(Clone, Debug, PartialEq)]
pub enum RunOutcome {
    /// Reached the requested step target with an empty quarantine set.
    Completed,
    /// Reached the requested step target, but only by isolating at least
    /// one instance — the results are partial (ladder step 4).
    Degraded,
    /// A [`CancelToken`] was tripped; the run checkpointed and exited at
    /// a step boundary.
    Cancelled,
    /// A [`RunBudget`] axis was exhausted.
    BudgetExhausted(BudgetKind),
    /// An unrecoverable error; [`RunReport::error`] carries it.
    Failed,
}

impl RunOutcome {
    /// Short label for reports and logs.
    pub fn label(&self) -> &'static str {
        match self {
            RunOutcome::Completed => "completed",
            RunOutcome::Degraded => "degraded",
            RunOutcome::Cancelled => "cancelled",
            RunOutcome::BudgetExhausted(_) => "budget-exhausted",
            RunOutcome::Failed => "failed",
        }
    }
}

/// Structured account of one governed run call, returned from **every**
/// exit path — completion, degradation, cancellation, budget exhaustion
/// and failure alike (`docs/ROBUSTNESS.md` §9).
#[derive(Clone, Debug)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Steps the caller asked for.
    pub steps_requested: u64,
    /// Net simulated progress: `now` at exit minus `now` at entry
    /// (rollbacks rewind this).
    pub steps_completed: u64,
    /// Steps actually executed, including replays after rollbacks.
    pub steps_executed: u64,
    /// Host time the run call took.
    pub elapsed: Duration,
    /// Retries performed, keyed by [`RetryCause::label`].
    pub retries: BTreeMap<&'static str, u64>,
    /// Rollbacks performed during this run call.
    pub rollbacks: u64,
    /// Peak memory-gauge reading observed at step boundaries (`None`
    /// when no gauge is installed).
    pub memory_peak: Option<u64>,
    /// Names of the instances quarantined at exit, in id order.
    pub quarantined: Vec<String>,
    /// Path of the last checkpoint written to disk (when a checkpoint
    /// directory is configured); the in-memory snapshot is always
    /// available through `Simulator::last_checkpoint`.
    pub last_checkpoint: Option<PathBuf>,
    /// The terminal error for [`RunOutcome::Failed`].
    pub error: Option<SimError>,
}

impl RunReport {
    /// True when the run stopped before its step target (cancelled,
    /// budget-exhausted or failed) — callers should treat statistics as
    /// partial.
    pub fn stopped_early(&self) -> bool {
        !matches!(self.outcome, RunOutcome::Completed | RunOutcome::Degraded)
    }

    /// Multi-line human-readable rendering (what the example binaries
    /// print on abnormal exits).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "run {}: {}/{} steps ({} executed) in {:.3?}\n",
            self.outcome.label(),
            self.steps_completed,
            self.steps_requested,
            self.steps_executed,
            self.elapsed,
        ));
        if let RunOutcome::BudgetExhausted(kind) = &self.outcome {
            s.push_str(&format!("  budget axis exhausted: {}\n", kind.label()));
        }
        if !self.retries.is_empty() {
            let parts: Vec<String> = self
                .retries
                .iter()
                .map(|(k, v)| format!("{k}: {v}"))
                .collect();
            s.push_str(&format!(
                "  retries: {} (rollbacks: {})\n",
                parts.join(", "),
                self.rollbacks
            ));
        }
        if let Some(peak) = self.memory_peak {
            s.push_str(&format!("  memory peak: {peak} bytes\n"));
        }
        if !self.quarantined.is_empty() {
            s.push_str(&format!("  quarantined: {}\n", self.quarantined.join(", ")));
        }
        if let Some(p) = &self.last_checkpoint {
            s.push_str(&format!("  last checkpoint: {}\n", p.display()));
        }
        if let Some(e) = &self.error {
            s.push_str(&format!("  error: {e}\n"));
        }
        s
    }

    /// Machine-readable JSON rendering (one object, no trailing newline)
    /// for `--report-json` and the ensemble aggregator. Hand-rolled like
    /// the JSONL probe stream: keys appear in a fixed order so reports
    /// diff cleanly in CI.
    pub fn to_json(&self) -> String {
        use crate::probe::json_escape;
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "{{\"outcome\":\"{}\"",
            json_escape(self.outcome.label())
        ));
        if let RunOutcome::BudgetExhausted(kind) = &self.outcome {
            s.push_str(&format!(",\"budget_axis\":\"{}\"", kind.label()));
        }
        s.push_str(&format!(
            ",\"steps_requested\":{},\"steps_completed\":{},\"steps_executed\":{}",
            self.steps_requested, self.steps_completed, self.steps_executed
        ));
        s.push_str(&format!(",\"elapsed_ns\":{}", self.elapsed.as_nanos()));
        s.push_str(",\"retries\":{");
        for (i, (k, v)) in self.retries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{v}", json_escape(k)));
        }
        s.push_str(&format!("}},\"rollbacks\":{}", self.rollbacks));
        match self.memory_peak {
            Some(peak) => s.push_str(&format!(",\"memory_peak\":{peak}")),
            None => s.push_str(",\"memory_peak\":null"),
        }
        s.push_str(",\"quarantined\":[");
        for (i, q) in self.quarantined.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\"", json_escape(q)));
        }
        s.push(']');
        match &self.last_checkpoint {
            Some(p) => s.push_str(&format!(
                ",\"last_checkpoint\":\"{}\"",
                json_escape(&p.display().to_string())
            )),
            None => s.push_str(",\"last_checkpoint\":null"),
        }
        match &self.error {
            Some(e) => s.push_str(&format!(",\"error\":\"{}\"", json_escape(&e.to_string()))),
            None => s.push_str(",\"error\":null"),
        }
        s.push('}');
        s
    }
}

/// Per-simulator governance state, `Option<Box<_>>`-gated on the
/// simulator exactly like the resilience and checkpoint state.
pub(crate) struct SupervisorState {
    pub(crate) budget: RunBudget,
    pub(crate) cancel: Option<CancelToken>,
    pub(crate) retry: RetryPolicy,
    pub(crate) gauge: Option<MemoryGauge>,
    /// Retries this run call, per cause.
    pub(crate) retries: BTreeMap<&'static str, u64>,
    /// Total retries this run call (checked against `retry.max_retries`).
    pub(crate) total_retries: u64,
    /// Peak gauge reading this run call.
    pub(crate) mem_peak: u64,
    /// The report of the most recent governed run.
    pub(crate) last_report: Option<RunReport>,
}

impl SupervisorState {
    pub(crate) fn new() -> Self {
        SupervisorState {
            budget: RunBudget::default(),
            cancel: None,
            retry: RetryPolicy::default(),
            gauge: None,
            retries: BTreeMap::new(),
            total_retries: 0,
            mem_peak: 0,
            last_report: None,
        }
    }
}

// ---------------------------------------------------------------------
// Sink backpressure
// ---------------------------------------------------------------------

/// What a bounded sink does when its buffer is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkPolicy {
    /// Propagate the stall: flush the buffer through to the underlying
    /// writer before accepting more, so a slow sink slows the producer
    /// but memory stays bounded.
    Block,
    /// Shed load: evict the oldest buffered records (whole lines, so the
    /// stream stays well-formed) and count them — never stall, never
    /// grow.
    DropOldest,
}

#[derive(Default)]
struct SinkCounters {
    dropped_records: AtomicU64,
    dropped_bytes: AtomicU64,
    blocking_flushes: AtomicU64,
}

/// Shared read handle for a [`BackpressureWriter`]'s shed/stall
/// counters; clone it out before moving the writer into a probe.
#[derive(Clone, Default)]
pub struct SinkStats {
    counters: Arc<SinkCounters>,
}

impl SinkStats {
    /// Whole records evicted under [`SinkPolicy::DropOldest`].
    pub fn dropped_records(&self) -> u64 {
        self.counters.dropped_records.load(Ordering::Relaxed)
    }

    /// Bytes evicted under [`SinkPolicy::DropOldest`].
    pub fn dropped_bytes(&self) -> u64 {
        self.counters.dropped_bytes.load(Ordering::Relaxed)
    }

    /// Synchronous buffer flushes forced by [`SinkPolicy::Block`].
    pub fn blocking_flushes(&self) -> u64 {
        self.counters.blocking_flushes.load(Ordering::Relaxed)
    }
}

/// Bounded buffering for line-oriented probe sinks (JSONL, VCD): buffers
/// whole records up to a byte capacity and applies a [`SinkPolicy`] on
/// overflow, so a slow or stalled sink can slow the run (`Block`) or
/// shed history (`DropOldest`) but can never silently wedge it or grow
/// without bound.
///
/// Records are delimited by `\n` — both sinks emit one record per line —
/// so `DropOldest` always evicts complete lines and the surviving stream
/// stays parseable.
pub struct BackpressureWriter<W: Write> {
    inner: W,
    /// Complete buffered records, oldest first.
    records: VecDeque<Vec<u8>>,
    /// Bytes across `records`.
    buffered: usize,
    /// The record currently being accumulated (no `\n` yet).
    partial: Vec<u8>,
    cap: usize,
    policy: SinkPolicy,
    stats: SinkStats,
}

impl<W: Write> BackpressureWriter<W> {
    /// Wrap `inner` with a buffer of `cap` bytes and the given policy.
    /// A `cap` of 0 is promoted to 1 so a single record always fits
    /// logically (oversized records are handled per policy).
    pub fn new(inner: W, cap: usize, policy: SinkPolicy) -> Self {
        BackpressureWriter {
            inner,
            records: VecDeque::new(),
            buffered: 0,
            partial: Vec::new(),
            cap: cap.max(1),
            policy,
            stats: SinkStats::default(),
        }
    }

    /// Handle for the shed/stall counters.
    pub fn stats(&self) -> SinkStats {
        self.stats.clone()
    }

    /// Bytes currently buffered (complete records only).
    pub fn buffered_bytes(&self) -> usize {
        self.buffered
    }

    fn drain_to_inner(&mut self) -> std::io::Result<()> {
        while let Some(rec) = self.records.pop_front() {
            self.buffered -= rec.len();
            self.inner.write_all(&rec)?;
        }
        Ok(())
    }

    fn push_record(&mut self, rec: Vec<u8>) -> std::io::Result<()> {
        if self.buffered + rec.len() > self.cap {
            match self.policy {
                SinkPolicy::Block => {
                    self.stats
                        .counters
                        .blocking_flushes
                        .fetch_add(1, Ordering::Relaxed);
                    self.drain_to_inner()?;
                    // An oversized record writes straight through.
                    if rec.len() > self.cap {
                        return self.inner.write_all(&rec);
                    }
                }
                SinkPolicy::DropOldest => {
                    while self.buffered + rec.len() > self.cap {
                        let Some(old) = self.records.pop_front() else {
                            // The new record alone exceeds the cap: shed it.
                            self.stats
                                .counters
                                .dropped_records
                                .fetch_add(1, Ordering::Relaxed);
                            self.stats
                                .counters
                                .dropped_bytes
                                .fetch_add(rec.len() as u64, Ordering::Relaxed);
                            return Ok(());
                        };
                        self.buffered -= old.len();
                        self.stats
                            .counters
                            .dropped_records
                            .fetch_add(1, Ordering::Relaxed);
                        self.stats
                            .counters
                            .dropped_bytes
                            .fetch_add(old.len() as u64, Ordering::Relaxed);
                    }
                }
            }
        }
        self.buffered += rec.len();
        self.records.push_back(rec);
        Ok(())
    }
}

impl<W: Write> Write for BackpressureWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut rest = buf;
        while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
            let (line, tail) = rest.split_at(nl + 1);
            let mut rec = std::mem::take(&mut self.partial);
            rec.extend_from_slice(line);
            self.push_record(rec)?;
            rest = tail;
        }
        self.partial.extend_from_slice(rest);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.drain_to_inner()?;
        if !self.partial.is_empty() {
            let partial = std::mem::take(&mut self.partial);
            self.inner.write_all(&partial)?;
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_builder_and_unlimited() {
        let b = RunBudget::new();
        assert!(b.is_unlimited());
        let b = RunBudget::new()
            .max_steps(10)
            .deadline(Duration::from_secs(1))
            .max_memory_bytes(1 << 20)
            .max_quarantined(2);
        assert!(!b.is_unlimited());
        assert_eq!(b.max_steps, Some(10));
        assert_eq!(b.max_quarantined, Some(2));
    }

    #[test]
    fn cancel_token_trips_clones_and_resets() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t.is_cancelled());
        t2.cancel();
        assert!(t.is_cancelled(), "clones share the flag");
        t.reset();
        assert!(!t2.is_cancelled());

        static FLAG: AtomicBool = AtomicBool::new(false);
        let s = CancelToken::from_static(&FLAG);
        FLAG.store(true, Ordering::SeqCst);
        assert!(s.is_cancelled());
        s.reset();
    }

    #[test]
    fn backoff_is_exponential_capped_and_deterministic() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            jitter_seed: 7,
            ..RetryPolicy::default()
        };
        let b1 = p.backoff_for(1);
        let b2 = p.backoff_for(2);
        let b9 = p.backoff_for(9);
        assert!(b1 >= Duration::from_millis(10));
        assert!(b2 >= Duration::from_millis(20), "{b2:?}");
        assert!(b9 <= Duration::from_millis(100), "capped: {b9:?}");
        assert_eq!(b1, p.backoff_for(1), "same seed, same jitter");
        let zero = RetryPolicy::default();
        assert_eq!(zero.backoff_for(5), Duration::ZERO, "no base, no sleep");
    }

    #[test]
    fn block_policy_flushes_through_and_loses_nothing() {
        let mut w = BackpressureWriter::new(Vec::new(), 16, SinkPolicy::Block);
        let stats = w.stats();
        for i in 0..10 {
            writeln!(w, "line {i}").unwrap();
        }
        w.flush().unwrap();
        let text = String::from_utf8(w.inner.clone()).unwrap();
        assert_eq!(text.lines().count(), 10);
        assert_eq!(stats.dropped_records(), 0);
        assert!(stats.blocking_flushes() > 0, "cap forced flushes");
    }

    #[test]
    fn drop_oldest_evicts_whole_records_and_counts() {
        let mut w = BackpressureWriter::new(Vec::new(), 24, SinkPolicy::DropOldest);
        let stats = w.stats();
        for i in 0..10 {
            writeln!(w, "line {i}").unwrap(); // 7 bytes each
        }
        w.flush().unwrap();
        let text = String::from_utf8(w.inner.clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() < 10, "older lines shed: {lines:?}");
        assert_eq!(*lines.last().unwrap(), "line 9", "newest survives");
        assert!(lines.iter().all(|l| l.starts_with("line ")), "{lines:?}");
        assert_eq!(stats.dropped_records() as usize, 10 - lines.len());
        assert!(stats.dropped_bytes() > 0);
    }

    #[test]
    fn oversized_record_handling_per_policy() {
        // Block: writes straight through.
        let mut w = BackpressureWriter::new(Vec::new(), 4, SinkPolicy::Block);
        writeln!(w, "a very long record").unwrap();
        w.flush().unwrap();
        assert!(String::from_utf8(w.inner.clone()).unwrap().contains("long"));
        // DropOldest: shed, counted.
        let mut w = BackpressureWriter::new(Vec::new(), 4, SinkPolicy::DropOldest);
        let stats = w.stats();
        writeln!(w, "a very long record").unwrap();
        w.flush().unwrap();
        assert!(w.inner.is_empty());
        assert_eq!(stats.dropped_records(), 1);
    }

    #[test]
    fn split_writes_reassemble_records() {
        let mut w = BackpressureWriter::new(Vec::new(), 1024, SinkPolicy::DropOldest);
        w.write_all(b"hel").unwrap();
        w.write_all(b"lo\nwor").unwrap();
        w.write_all(b"ld\n").unwrap();
        w.flush().unwrap();
        assert_eq!(
            String::from_utf8(w.inner.clone()).unwrap(),
            "hello\nworld\n"
        );
    }
}
