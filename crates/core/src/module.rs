//! Module templates, port specifications and the two-phase `Module` trait.
//!
//! An LSE module instance executes *concurrently* with all other instances
//! (paper §2.1): the kernel invokes its [`Module::react`] handler whenever
//! more of its inputs resolve within the current time-step, and its
//! [`Module::commit`] handler exactly once at the end of the time-step.
//!
//! The contract modules must follow:
//!
//! * `react` may be invoked several times per time-step. It must be
//!   *monotone*: look at the currently resolved signals and drive whatever
//!   outputs are determined by them; never retract a driven wire; never
//!   guess the value of an `Unknown` wire. Internal state must **not** be
//!   mutated in `react`.
//! * `commit` runs once, after every wire has resolved (explicitly or by
//!   the default control semantics). All internal state updates — queue
//!   pushes/pops, register writes, statistics — belong here.

use crate::error::SimError;
use crate::exec::{CommitCtx, ReactCtx};

/// Direction of a port, from the owning module's perspective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Data and enable arrive; the module drives ack.
    In,
    /// The module drives data and enable; ack arrives.
    Out,
}

/// Index of a port within its module's [`ModuleSpec`].
///
/// Library modules build their own specs, so they know port indices
/// statically and can store them in `const`s for allocation-free access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PortId(pub u16);

/// Static description of one port of a module template.
#[derive(Clone, Debug)]
pub struct PortSpec {
    /// Port name, used by specifications and diagnostics.
    pub name: String,
    /// Port direction.
    pub dir: Dir,
    /// Minimum number of connections required for a valid netlist.
    /// `0` means the port may be left unconnected (partial specification).
    pub min_conns: u32,
    /// Maximum number of connections allowed (`u32::MAX` = unbounded).
    pub max_conns: u32,
}

/// Static description of a module template instance: its ports plus the
/// scheduling declarations used by the optimizing static scheduler
/// (paper ref [22]).
#[derive(Clone, Debug)]
pub struct ModuleSpec {
    /// Template name this instance was created from.
    pub template: String,
    /// All ports, in declaration order ([`PortId`] indexes this).
    pub ports: Vec<PortSpec>,
    /// True if the module's `react` handler reads ack wires on its output
    /// ports (rare). When false, ack dependencies are excluded from the
    /// static schedule's dependency graph, breaking most cycles.
    pub reads_ack_in_react: bool,
    /// True if the kernel may skip this module's `commit` on time-steps
    /// where it was not an endpoint of a completed transfer and does not
    /// report [`Module::pending`] internal state. See the contract on
    /// [`ModuleSpec::commit_only_when_active`].
    pub commit_only_when_active: bool,
    /// True if this template's `commit` is *always* a no-op — the kernel
    /// then never calls it at all. See [`ModuleSpec::no_commit`].
    pub commit_is_noop: bool,
}

impl ModuleSpec {
    /// Start a spec for the named template.
    pub fn new(template: impl Into<String>) -> Self {
        ModuleSpec {
            template: template.into(),
            ports: Vec::new(),
            reads_ack_in_react: false,
            commit_only_when_active: false,
            commit_is_noop: false,
        }
    }

    /// Add an input port; returns `self` for chaining. Ports get sequential
    /// [`PortId`]s in declaration order.
    pub fn input(mut self, name: &str, min_conns: u32, max_conns: u32) -> Self {
        self.ports.push(PortSpec {
            name: name.to_owned(),
            dir: Dir::In,
            min_conns,
            max_conns,
        });
        self
    }

    /// Add an output port; returns `self` for chaining.
    pub fn output(mut self, name: &str, min_conns: u32, max_conns: u32) -> Self {
        self.ports.push(PortSpec {
            name: name.to_owned(),
            dir: Dir::Out,
            min_conns,
            max_conns,
        });
        self
    }

    /// Declare that `react` reads ack wires (forces conservative ack
    /// dependencies in the static schedule).
    pub fn with_ack_in_react(mut self) -> Self {
        self.reads_ack_in_react = true;
        self
    }

    /// Opt into activity-gated commit. The template thereby promises that
    /// its `commit` is a no-op — no state change, no statistics — on any
    /// time-step where (a) no transfer completed on any of its ports and
    /// (b) [`Module::pending`] returns false. The kernel then skips the
    /// call on such steps. The commit *set* is derived from the completed
    /// transfers of the time-step's unique fixed point, so it is identical
    /// under every scheduler.
    pub fn commit_only_when_active(mut self) -> Self {
        self.commit_only_when_active = true;
        self
    }

    /// Declare that this template's `commit` handler does nothing —
    /// stateless combinational modules (forwarders, muxes, arithmetic)
    /// whose entire behavior lives in `react`. The kernel then skips the
    /// commit call entirely, every step, removing a virtual dispatch per
    /// instance per step from the hot loop. Stronger than
    /// [`ModuleSpec::commit_only_when_active`]: the promise is
    /// unconditional, so [`Module::pending`] is never consulted either.
    pub fn no_commit(mut self) -> Self {
        self.commit_is_noop = true;
        self
    }

    /// Resolve a port name to its id.
    pub fn port(&self, name: &str) -> Result<PortId, SimError> {
        self.ports
            .iter()
            .position(|p| p.name == name)
            .map(|i| PortId(i as u16))
            .ok_or_else(|| {
                SimError::port(format!(
                    "template {:?} has no port {:?} (has: {})",
                    self.template,
                    name,
                    self.ports
                        .iter()
                        .map(|p| p.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })
    }

    /// The spec of a port by id. Panics on an out-of-range id (ids are
    /// library-internal constants, so this indicates a library bug).
    pub fn port_spec(&self, id: PortId) -> &PortSpec {
        &self.ports[id.0 as usize]
    }
}

/// A concurrently executing hardware model component.
///
/// See the module-level documentation for the two-phase contract.
pub trait Module: Send {
    /// Reactive handler: runs one or more times per time-step as inputs
    /// resolve. Drive outputs; do not mutate state.
    fn react(&mut self, ctx: &mut ReactCtx<'_>) -> Result<(), SimError>;

    /// Commit handler: runs once per time-step after full resolution.
    /// Mutate state based on completed transfers.
    fn commit(&mut self, ctx: &mut CommitCtx<'_>) -> Result<(), SimError>;

    /// For templates that declared
    /// [`ModuleSpec::commit_only_when_active`]: report whether internal
    /// state still needs per-step commit processing (e.g. a non-empty
    /// queue aging its occupancy statistics). Returning `true` forces the
    /// commit call even on transfer-free steps. The default (`false`)
    /// means only completed transfers trigger commits; templates that
    /// never opted in are committed unconditionally and can ignore this.
    fn pending(&self) -> bool {
        false
    }

    /// Serialize the module's internal state for a checkpoint
    /// (`crate::snapshot`). Called at step boundaries only, never inside
    /// a time-step. The default returns an empty blob — correct for
    /// stateless modules, which is why partial specifications checkpoint
    /// out of the box. Stateful templates encode their fields with a
    /// [`crate::snapshot::StateWriter`]; state that cannot be serialized
    /// (e.g. [`crate::value::Value::Opaque`] payloads with no custom
    /// encoding) should return an error rather than save a lie.
    fn state_save(&self) -> Result<Vec<u8>, SimError> {
        Ok(Vec::new())
    }

    /// Restore internal state from a blob produced by
    /// [`Module::state_save`] on an identically constructed instance.
    ///
    /// An **empty** blob means "reset to the initial (post-construction)
    /// state": stateful templates must implement that arm too — the
    /// kernel uses it to scrub possibly-torn state out of an instance
    /// whose handler panicked mid-mutation before quarantining it. The
    /// default accepts only the empty blob (it has no state to restore)
    /// and rejects anything else as a shape mismatch.
    fn state_restore(&mut self, state: &[u8]) -> Result<(), SimError> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(SimError::model(
                "state_restore: non-empty state blob for a module without state hooks",
            ))
        }
    }

    /// Offer a [`crate::kernel::KernelHint`] describing this instance as a
    /// candidate for lowering into a type-specialized kernel once its
    /// algorithmic parameters and wire types resolve at plan-compile time
    /// (`crate::kernel`). The hint carries the fully resolved parameters
    /// (depth, latency, script, ...) so the compiler can monomorphize
    /// without re-parsing anything. The default (`None`) keeps the
    /// instance on the dynamic `Module::react` path — always correct,
    /// which is why arbitrary user modules need not opt in.
    fn specialize(&self) -> Option<crate::kernel::KernelHint> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_assigns_sequential_ids() {
        let spec = ModuleSpec::new("t")
            .input("a", 1, 1)
            .output("b", 0, u32::MAX)
            .input("c", 0, 4);
        assert_eq!(spec.port("a").unwrap(), PortId(0));
        assert_eq!(spec.port("b").unwrap(), PortId(1));
        assert_eq!(spec.port("c").unwrap(), PortId(2));
        assert_eq!(spec.port_spec(PortId(1)).dir, Dir::Out);
        assert_eq!(spec.port_spec(PortId(2)).max_conns, 4);
    }

    #[test]
    fn unknown_port_reports_candidates() {
        let spec = ModuleSpec::new("t").input("a", 1, 1);
        let err = spec.port("zz").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("zz") && msg.contains('a'));
    }

    #[test]
    fn ack_in_react_flag() {
        let spec = ModuleSpec::new("t").with_ack_in_react();
        assert!(spec.reads_ack_in_react);
        assert!(!ModuleSpec::new("t").reads_ack_in_react);
    }

    #[test]
    fn commit_gating_flag() {
        let spec = ModuleSpec::new("t").commit_only_when_active();
        assert!(spec.commit_only_when_active);
        assert!(!ModuleSpec::new("t").commit_only_when_active);
    }
}
