//! Type-specialized handler kernels (experiment E19).
//!
//! EXPERIMENTS.md E11 localized the residual gap between the compiled
//! scheduler and a hand-tuned monolithic loop in the handler *bodies*:
//! dynamic [`Value`] tagging, `Box<dyn Module>` dispatch, and per-wire
//! monotonicity checks on every write. Following the paper's companion
//! code-generation work (ref [25], MICRO 2002) — and the contracts
//! literature's license to check interface contracts once at composition
//! time — this module lowers the hot `pcl` templates into monomorphized
//! kernels over unboxed lanes at *plan-compile* time:
//!
//! * [`classify`] inspects the constructed topology once and decides, per
//!   instance, whether its handler can be lowered: the template must offer
//!   a [`KernelHint`], every value that can cross its ports must have a
//!   statically known unboxed shape ([`KVal`]), all of its producers must
//!   themselves be specialized, and any fixed-point island it belongs to
//!   must be specialized wholesale (and internally data-acyclic).
//! * Eligible instances get a [`Kernel`]: a closed enum whose `react` and
//!   `commit` bodies are exact transcriptions of the dynamic handlers,
//!   but reading and writing [`Lane`]s — flat `u64`-word wire slots with
//!   one-byte resolution states — instead of going through the
//!   [`crate::store::SignalStore`] write path and its per-write checks.
//!   Monotonicity of the kernels is proved once, here, by construction.
//! * Everything else (tuple/opaque payloads, user modules, bypass queues,
//!   combinational rings) stays on the dynamic `Module::react` path; the
//!   two populations coexist inside one compiled plan and hand values to
//!   each other through the store on "slow" edges.
//!
//! Specialization is an execution detail of `SchedKind::Compiled`: probes,
//! fault plans, failure policies and watchdogs de-specialize the simulator
//! (kernel state is written back into the modules losslessly), so observed
//! behavior — probe streams, statistics, checkpoints — is byte-identical
//! with specialization on or off. The equivalence proptests in
//! `crates/bench` hold both paths to that contract.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use crate::compile::{CompiledPlan, PlanNode};
use crate::error::SimError;
use crate::module::{Dir, Module, PortId};
use crate::netlist::{EdgeId, InstanceId};
use crate::signal::{Res, Wire, WireWrite};
use crate::snapshot::{StateReader, StateWriter};
use crate::stats::{Stats, STAT_SLOT_UNRESOLVED};
use crate::store::SignalStore;
use crate::topology::Topology;
use crate::value::Value;

/// An ALU operation table: `(op, a, b) -> result`, supplied by the library
/// that owns the dynamic handler so the kernel computes bit-identical
/// results (including identical unknown-op errors) without the core crate
/// duplicating the operation semantics.
pub type AluFn = fn(u64, u64, u64) -> Result<u64, SimError>;

/// Side-channel delivery for sink collection handles: called once per value
/// received, in commit order, exactly when the dynamic handler would have
/// appended to its shared buffer.
pub type SinkCollect = Arc<dyn Fn(Value) + Send + Sync>;

/// A template's offer to be lowered into a specialized kernel, carrying its
/// fully resolved algorithmic parameters (see [`Module::specialize`]).
///
/// A hint is an *offer*, not a promise: [`classify`] may still keep the
/// instance dynamic (unresolved wire types, dynamic producers, bypass
/// combinational paths, mixed fixed-point islands).
pub enum KernelHint {
    /// A FIFO queue (`pcl` `queue` without bypass; bypass queues are
    /// combinational and stay dynamic).
    Queue {
        /// Capacity in items.
        depth: usize,
        /// True for combinational fall-through queues (never specialized).
        bypass: bool,
    },
    /// A one-entry register stage.
    Register,
    /// A fixed-latency pipe.
    Delay {
        /// Cycles between acceptance and earliest delivery.
        latency: u64,
    },
    /// A broadcast tee.
    Tee {
        /// True if delivery requires every consumer to accept.
        require_all: bool,
    },
    /// A combinational word inverter.
    Inverter,
    /// A combinational ALU over `(op, a, b)` word tuples.
    Alu {
        /// The operation table shared with the dynamic handler.
        compute: AluFn,
    },
    /// A consuming sink.
    Sink {
        /// Optional collection side-channel (present for `collecting()`
        /// sinks; the handle buffer is shared, not duplicated).
        collect: Option<SinkCollect>,
    },
    /// A scripted source emitting a fixed list of values in order.
    ScriptSource {
        /// The script (configuration; the cursor is the durable state).
        script: Vec<Value>,
    },
    /// A source repeating one value on every connection, every cycle.
    RepeatingSource {
        /// The repeated value.
        value: Value,
    },
    /// An arithmetic word sequence source.
    SeqSource {
        /// First value (the reset state of the cursor).
        start: u64,
        /// Total emissions (the reset state of the remaining counter).
        count: u64,
        /// Added (wrapping) after each accepted emission.
        step: u64,
        /// Emit every `period` cycles.
        period: u64,
    },
}

impl fmt::Debug for KernelHint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KernelHint::Queue { .. } => "Queue",
            KernelHint::Register => "Register",
            KernelHint::Delay { .. } => "Delay",
            KernelHint::Tee { .. } => "Tee",
            KernelHint::Inverter => "Inverter",
            KernelHint::Alu { .. } => "Alu",
            KernelHint::Sink { .. } => "Sink",
            KernelHint::ScriptSource { .. } => "ScriptSource",
            KernelHint::RepeatingSource { .. } => "RepeatingSource",
            KernelHint::SeqSource { .. } => "SeqSource",
        })
    }
}

// ---------------------------------------------------------------------------
// Unboxed lane values
// ---------------------------------------------------------------------------

/// Statically known shape of every value crossing a fast edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ValKind {
    /// `Value::Word`.
    Word,
    /// `Value::Bool`.
    Bool,
    /// A three-word tuple — the ALU's `(op, a, b)` operand shape.
    Tup3,
}

impl fmt::Display for ValKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ValKind::Word => "word",
            ValKind::Bool => "bool",
            ValKind::Tup3 => "(word, word, word)",
        })
    }
}

/// The unboxed shape of `v`, if it has one.
pub(crate) fn kind_of(v: &Value) -> Option<ValKind> {
    match v {
        Value::Word(_) => Some(ValKind::Word),
        Value::Bool(_) => Some(ValKind::Bool),
        Value::Tuple(t) if t.len() == 3 && t.iter().all(|e| matches!(e, Value::Word(_))) => {
            Some(ValKind::Tup3)
        }
        _ => None,
    }
}

/// An unboxed payload: the only shapes the kernels move. `Copy`, no `Arc`
/// traffic, no allocation on the transfer path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum KVal {
    /// A machine word.
    Word(u64),
    /// A boolean.
    Bool(bool),
    /// An `(op, a, b)` word triple.
    Tup3([u64; 3]),
}

impl KVal {
    /// Box back into the dynamic [`Value`] (slow-edge writes, sink
    /// collection, state write-back).
    pub(crate) fn to_value(self) -> Value {
        match self {
            KVal::Word(w) => Value::Word(w),
            KVal::Bool(b) => Value::Bool(b),
            KVal::Tup3([op, a, b]) => Value::Tuple(Arc::new(vec![
                Value::Word(op),
                Value::Word(a),
                Value::Word(b),
            ])),
        }
    }

    /// Mirror of [`Value::as_word`] over the unboxed shapes.
    pub(crate) fn as_word(self) -> Option<u64> {
        match self {
            KVal::Word(w) => Some(w),
            KVal::Bool(b) => Some(u64::from(b)),
            KVal::Tup3(_) => None,
        }
    }

    /// Unbox `v` as a `kind`-shaped payload, with a structured type error
    /// naming the instance and port on mismatch (checkpoint restore of a
    /// foreign blob is the only reachable path).
    pub(crate) fn from_value(
        v: &Value,
        kind: ValKind,
        instance: &str,
        port: &str,
    ) -> Result<KVal, SimError> {
        match kind {
            ValKind::Word => {
                if let Value::Word(w) = v {
                    return Ok(KVal::Word(*w));
                }
            }
            ValKind::Bool => return Ok(KVal::Bool(v.bool_checked(instance, port)?)),
            ValKind::Tup3 => {
                if let Value::Tuple(t) = v {
                    if t.len() == 3 {
                        return Ok(KVal::Tup3([
                            t[0].word_checked(instance, port)?,
                            t[1].word_checked(instance, port)?,
                            t[2].word_checked(instance, port)?,
                        ]));
                    }
                }
            }
        }
        Err(SimError::type_err(format!(
            "{instance}.{port}: expected a {kind} lane value, got {}",
            v.kind()
        )))
    }
}

// ---------------------------------------------------------------------------
// Lanes
// ---------------------------------------------------------------------------

/// Wire-resolution states of a lane slot (one byte each).
const UNR: u8 = 0;
const NO_S: u8 = 1;
const YES_S: u8 = 2;

/// One fast edge: the three wires of a connection as flat bytes plus the
/// unboxed payload, bypassing the store on the hot path. Lanes are reset
/// by the specialized reaction phase each step; the store is credited for
/// them wholesale so the default phase and full-resolution accounting stay
/// exact.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Lane {
    /// The edge this lane shadows (for wake tables and transfer emission).
    pub(crate) edge: EdgeId,
    /// Data wire state.
    pub(crate) data: u8,
    /// Enable wire state.
    pub(crate) enable: u8,
    /// Ack wire state.
    pub(crate) ack: u8,
    /// Set by the commit sweep when all three wires resolved `Yes`.
    pub(crate) transferred: bool,
    /// The payload when `data == YES_S`.
    pub(crate) val: KVal,
}

impl Lane {
    fn new(edge: EdgeId) -> Lane {
        Lane {
            edge,
            data: UNR,
            enable: UNR,
            ack: UNR,
            transferred: false,
            val: KVal::Word(0),
        }
    }

    #[inline]
    pub(crate) fn reset(&mut self) {
        self.data = UNR;
        self.enable = UNR;
        self.ack = UNR;
        self.transferred = false;
    }

    /// True iff all three wires resolved (the specialized analogue of
    /// `SignalStore::is_fully_resolved`).
    #[inline]
    pub(crate) fn fully_resolved(&self) -> bool {
        self.data != UNR && self.enable != UNR && self.ack != UNR
    }

    /// True iff a transfer completes on this lane this step.
    #[inline]
    pub(crate) fn completes(&self) -> bool {
        self.data == YES_S && self.enable == YES_S && self.ack == YES_S
    }
}

/// An input slot of a kernel. Inputs of eligible instances are always fast
/// (producer-eligibility closure) or unconnected.
#[derive(Clone, Copy, Debug)]
pub(crate) enum InLane {
    /// Lane index into the plan's lane table.
    Fast(u32),
    /// Port slot with no connection (partial specification): data reads
    /// `No`, ack writes are dropped — same as the dynamic `ReactCtx`.
    Unconnected,
}

/// An output slot of a kernel.
#[derive(Clone, Copy, Debug)]
pub(crate) enum OutLane {
    /// Lane index into the plan's lane table.
    Fast(u32),
    /// The consumer is dynamic: write through the store so its `react`
    /// observes the value. Ack-reading kernels never have slow outputs.
    Slow(EdgeId),
    /// No connection: writes dropped, acks read `Yes`, `transferred_out`
    /// reads `true` — same as the dynamic contexts.
    Unconnected,
}

/// Lane access for kernel `react` bodies. Writes are first-touch-wins with
/// an idempotence check, mirroring the store's monotonic contract; a
/// conflicting re-drive is unreachable for the (by construction monotone)
/// kernels but still reported rather than trusted.
pub(crate) struct Io<'a> {
    pub(crate) lanes: &'a mut [Lane],
    pub(crate) store: &'a mut SignalStore,
    /// Island driver only: newly resolved wires, for the wake tables.
    /// `None` on the straight-line path, where nothing is re-woken.
    pub(crate) newly: Option<&'a mut Vec<(EdgeId, Wire)>>,
    pub(crate) now: u64,
}

impl Io<'_> {
    #[inline]
    fn in_data(&self, i: InLane) -> u8 {
        match i {
            InLane::Fast(l) => self.lanes[l as usize].data,
            InLane::Unconnected => NO_S,
        }
    }

    #[inline]
    fn in_val(&self, i: InLane) -> KVal {
        match i {
            InLane::Fast(l) => self.lanes[l as usize].val,
            InLane::Unconnected => KVal::Word(0),
        }
    }

    #[inline]
    fn out_ack(&self, o: OutLane) -> u8 {
        match o {
            OutLane::Fast(l) => self.lanes[l as usize].ack,
            // Classification demotes ack-readers with slow outputs, so the
            // `Slow` arm is unreachable; `Yes` is the unconnected default.
            OutLane::Slow(_) | OutLane::Unconnected => YES_S,
        }
    }

    #[inline]
    fn put(&mut self, l: u32, wire: Wire, state: u8, v: Option<KVal>) -> Result<(), SimError> {
        let lane = &mut self.lanes[l as usize];
        let slot = match wire {
            Wire::Data => &mut lane.data,
            Wire::Enable => &mut lane.enable,
            Wire::Ack => &mut lane.ack,
        };
        if *slot == UNR {
            *slot = state;
            if let Some(v) = v {
                lane.val = v;
            }
            let edge = lane.edge;
            if let Some(n) = self.newly.as_deref_mut() {
                n.push((edge, wire));
            }
            Ok(())
        } else if *slot == state && v.is_none_or(|v| v == lane.val) {
            Ok(())
        } else {
            Err(SimError::contract(format!(
                "specialized kernel: conflicting re-drive of {wire:?} on edge {}",
                lane.edge.0
            )))
        }
    }

    fn slow_pair(&mut self, e: EdgeId, data: Res<Value>, enable: Res<()>) -> Result<(), SimError> {
        // Slow-edge readers are dynamic and never island-mates of a kernel,
        // so these writes need no wake tracking.
        self.store
            .write_pair(e, data, enable)
            .map(|_| ())
            .map_err(|err| SimError::contract(format!("specialized kernel: {err}")))
    }

    fn slow_one(&mut self, e: EdgeId, w: WireWrite) -> Result<(), SimError> {
        self.store
            .write(e, w)
            .map(|_| ())
            .map_err(|err| SimError::contract(format!("specialized kernel: {err}")))
    }

    #[inline]
    fn send(&mut self, o: OutLane, v: KVal) -> Result<(), SimError> {
        match o {
            OutLane::Fast(l) => {
                self.put(l, Wire::Data, YES_S, Some(v))?;
                self.put(l, Wire::Enable, YES_S, None)
            }
            OutLane::Slow(e) => self.slow_pair(e, Res::Yes(v.to_value()), Res::Yes(())),
            OutLane::Unconnected => Ok(()),
        }
    }

    #[inline]
    fn send_nothing(&mut self, o: OutLane) -> Result<(), SimError> {
        match o {
            OutLane::Fast(l) => {
                self.put(l, Wire::Data, NO_S, None)?;
                self.put(l, Wire::Enable, NO_S, None)
            }
            OutLane::Slow(e) => self.slow_pair(e, Res::No, Res::No),
            OutLane::Unconnected => Ok(()),
        }
    }

    #[inline]
    fn set_data_yes(&mut self, o: OutLane, v: KVal) -> Result<(), SimError> {
        match o {
            OutLane::Fast(l) => self.put(l, Wire::Data, YES_S, Some(v)),
            OutLane::Slow(e) => self.slow_one(e, WireWrite::Data(Res::Yes(v.to_value()))),
            OutLane::Unconnected => Ok(()),
        }
    }

    #[inline]
    fn set_enable(&mut self, o: OutLane, en: bool) -> Result<(), SimError> {
        let s = if en { YES_S } else { NO_S };
        match o {
            OutLane::Fast(l) => self.put(l, Wire::Enable, s, None),
            OutLane::Slow(e) => self.slow_one(
                e,
                WireWrite::Enable(if en { Res::Yes(()) } else { Res::No }),
            ),
            OutLane::Unconnected => Ok(()),
        }
    }

    #[inline]
    fn set_ack(&mut self, i: InLane, accept: bool) -> Result<(), SimError> {
        match i {
            InLane::Fast(l) => self.put(l, Wire::Ack, if accept { YES_S } else { NO_S }, None),
            InLane::Unconnected => Ok(()),
        }
    }
}

/// `transferred_out` over a kernel output slot.
#[inline]
fn out_transferred(lanes: &[Lane], store: &SignalStore, o: OutLane) -> bool {
    match o {
        OutLane::Fast(l) => lanes[l as usize].transferred,
        OutLane::Slow(e) => store.transfers_on(e),
        OutLane::Unconnected => true,
    }
}

/// `transferred_in` over a kernel input slot.
#[inline]
fn in_transferred(lanes: &[Lane], i: InLane) -> Option<KVal> {
    match i {
        InLane::Fast(l) => {
            let ln = &lanes[l as usize];
            ln.transferred.then_some(ln.val)
        }
        InLane::Unconnected => None,
    }
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

const UNSET: u32 = STAT_SLOT_UNRESOLVED;

/// FIFO queue kernel (`pcl` `queue`, non-bypass).
pub(crate) struct QueueK {
    depth: usize,
    items: VecDeque<KVal>,
    ins: Vec<InLane>,
    outs: Vec<OutLane>,
    inst: InstanceId,
    s_deq: u32,
    s_enq: u32,
    s_full: u32,
    s_occ: u32,
    s_dist: u32,
}

impl QueueK {
    fn react(&self, io: &mut Io<'_>) -> Result<(), SimError> {
        for (j, &o) in self.outs.iter().enumerate() {
            match self.items.get(j) {
                Some(&v) => io.send(o, v)?,
                None => io.send_nothing(o)?,
            }
        }
        let free = self.depth - self.items.len();
        if free >= self.ins.len() {
            for &i in &self.ins {
                io.set_ack(i, true)?;
            }
            return Ok(());
        }
        for &i in &self.ins {
            if io.in_data(i) == UNR {
                return Ok(());
            }
        }
        let mut budget = free;
        for &i in &self.ins {
            let present = io.in_data(i) == YES_S;
            if present && budget > 0 {
                io.set_ack(i, true)?;
                budget -= 1;
            } else if present {
                io.set_ack(i, false)?;
            } else {
                io.set_ack(i, true)?;
            }
        }
        Ok(())
    }

    fn commit(&mut self, lanes: &[Lane], store: &SignalStore, stats: &mut Stats) {
        let mut popped: u64 = 0;
        for j in (0..self.outs.len().min(self.items.len())).rev() {
            if out_transferred(lanes, store, self.outs[j]) {
                self.items.remove(j);
                popped += 1;
            }
        }
        stats.count_cached(&mut self.s_deq, self.inst, "deq", popped);
        for &i in &self.ins {
            if let Some(v) = in_transferred(lanes, i) {
                self.items.push_back(v);
                stats.count_cached(&mut self.s_enq, self.inst, "enq", 1);
            }
        }
        if self.items.len() == self.depth {
            stats.count_cached(&mut self.s_full, self.inst, "full_cycles", 1);
        }
        stats.sample_cached(
            &mut self.s_occ,
            self.inst,
            "occupancy",
            self.items.len() as f64,
        );
        stats.histo_cached(
            &mut self.s_dist,
            self.inst,
            "occupancy_dist",
            self.items.len() as u64,
        );
    }
}

/// Register-stage kernel (`pcl` `register`).
pub(crate) struct RegisterK {
    held: Option<KVal>,
    in_: InLane,
    out: OutLane,
    inst: InstanceId,
    s_fwd: u32,
}

impl RegisterK {
    fn react(&self, io: &mut Io<'_>) -> Result<(), SimError> {
        match self.held {
            Some(v) => io.send(self.out, v)?,
            None => io.send_nothing(self.out)?,
        }
        io.set_ack(self.in_, self.held.is_none())
    }

    fn commit(&mut self, lanes: &[Lane], store: &SignalStore, stats: &mut Stats) {
        if out_transferred(lanes, store, self.out) {
            self.held = None;
            stats.count_cached(&mut self.s_fwd, self.inst, "forwarded", 1);
        }
        if let Some(v) = in_transferred(lanes, self.in_) {
            self.held = Some(v);
        }
    }
}

/// Fixed-latency pipe kernel (`pcl` `delay`).
pub(crate) struct DelayK {
    latency: u64,
    inflight: VecDeque<(KVal, u64)>,
    in_: InLane,
    out: OutLane,
    inst: InstanceId,
    s_del: u32,
    s_acc: u32,
}

impl DelayK {
    fn react(&self, io: &mut Io<'_>) -> Result<(), SimError> {
        match self.inflight.front() {
            Some(&(v, ready)) if ready <= io.now => io.send(self.out, v)?,
            _ => io.send_nothing(self.out)?,
        }
        io.set_ack(self.in_, (self.inflight.len() as u64) <= self.latency)
    }

    fn commit(&mut self, lanes: &[Lane], store: &SignalStore, stats: &mut Stats, now: u64) {
        if out_transferred(lanes, store, self.out) {
            self.inflight.pop_front();
            stats.count_cached(&mut self.s_del, self.inst, "delivered", 1);
        }
        if let Some(v) = in_transferred(lanes, self.in_) {
            self.inflight.push_back((v, now + self.latency));
            stats.count_cached(&mut self.s_acc, self.inst, "accepted", 1);
        }
    }
}

/// Broadcast tee kernel (`pcl` `tee`).
pub(crate) struct TeeK {
    require_all: bool,
    in_: InLane,
    outs: Vec<OutLane>,
    inst: InstanceId,
    s_con: u32,
    s_del: u32,
}

impl TeeK {
    fn react(&self, io: &mut Io<'_>) -> Result<(), SimError> {
        match io.in_data(self.in_) {
            UNR => return Ok(()),
            NO_S => {
                for &o in &self.outs {
                    io.send_nothing(o)?;
                }
                io.set_ack(self.in_, true)?;
                return Ok(());
            }
            _ => {
                let v = io.in_val(self.in_);
                for &o in &self.outs {
                    io.set_data_yes(o, v)?;
                }
            }
        }
        let mut all = true;
        let mut any = false;
        for &o in &self.outs {
            match io.out_ack(o) {
                UNR => return Ok(()),
                YES_S => any = true,
                _ => all = false,
            }
        }
        let consume = if self.require_all { all } else { any };
        for &o in &self.outs {
            io.set_enable(o, !self.require_all || all)?;
        }
        io.set_ack(self.in_, consume)
    }

    fn commit(&mut self, lanes: &[Lane], store: &SignalStore, stats: &mut Stats) {
        if in_transferred(lanes, self.in_).is_some() {
            stats.count_cached(&mut self.s_con, self.inst, "consumed", 1);
        }
        for &o in &self.outs {
            if out_transferred(lanes, store, o) {
                stats.count_cached(&mut self.s_del, self.inst, "delivered", 1);
            }
        }
    }
}

/// Word-inverter kernel (`pcl` `inverter`).
pub(crate) struct InverterK {
    in_: InLane,
    out: OutLane,
}

impl InverterK {
    fn react(&self, io: &mut Io<'_>) -> Result<(), SimError> {
        io.set_ack(self.in_, true)?;
        match io.in_data(self.in_) {
            UNR => Ok(()),
            NO_S => io.send(self.out, KVal::Word(1)),
            _ => {
                let w = io.in_val(self.in_).as_word().unwrap_or(0);
                io.send(self.out, KVal::Word(1 - (w & 1)))
            }
        }
    }
}

/// ALU kernel (`pcl` `alu`).
pub(crate) struct AluK {
    compute: AluFn,
    in_: InLane,
    out: OutLane,
    inst: InstanceId,
    s_ops: u32,
}

impl AluK {
    fn react(&self, io: &mut Io<'_>) -> Result<(), SimError> {
        match io.in_data(self.in_) {
            UNR => Ok(()),
            NO_S => {
                io.send_nothing(self.out)?;
                io.set_ack(self.in_, true)
            }
            _ => {
                let KVal::Tup3([op, a, b]) = io.in_val(self.in_) else {
                    return Err(SimError::internal(
                        "alu kernel: lane payload is not an operand tuple",
                    ));
                };
                let r = (self.compute)(op, a, b)?;
                io.send(self.out, KVal::Word(r))?;
                match io.out_ack(self.out) {
                    UNR => Ok(()),
                    YES_S => io.set_ack(self.in_, true),
                    _ => io.set_ack(self.in_, false),
                }
            }
        }
    }

    fn commit(&mut self, lanes: &[Lane], store: &SignalStore, stats: &mut Stats) {
        if out_transferred(lanes, store, self.out) {
            stats.count_cached(&mut self.s_ops, self.inst, "ops", 1);
        }
    }
}

/// Consuming sink kernel (`pcl` `sink` / `collecting`).
pub(crate) struct SinkK {
    collect: Option<SinkCollect>,
    ins: Vec<InLane>,
    inst: InstanceId,
    s_rcv: u32,
    s_sum: u32,
}

impl SinkK {
    fn react(&self, io: &mut Io<'_>) -> Result<(), SimError> {
        for &i in &self.ins {
            io.set_ack(i, true)?;
        }
        Ok(())
    }

    fn commit(&mut self, lanes: &[Lane], stats: &mut Stats) {
        for &i in &self.ins {
            if let Some(v) = in_transferred(lanes, i) {
                stats.count_cached(&mut self.s_rcv, self.inst, "received", 1);
                if let Some(w) = v.as_word() {
                    stats.count_cached(&mut self.s_sum, self.inst, "sum", w);
                }
                if let Some(c) = &self.collect {
                    c(v.to_value());
                }
            }
        }
    }
}

/// Scripted-source kernel (`pcl` `script`).
pub(crate) struct ScriptK {
    script: Vec<KVal>,
    next: usize,
    out: OutLane,
    inst: InstanceId,
    s_emit: u32,
}

impl ScriptK {
    fn react(&self, io: &mut Io<'_>) -> Result<(), SimError> {
        match self.script.get(self.next) {
            Some(&v) => io.send(self.out, v),
            None => io.send_nothing(self.out),
        }
    }

    fn commit(&mut self, lanes: &[Lane], store: &SignalStore, stats: &mut Stats) {
        if out_transferred(lanes, store, self.out) {
            self.next += 1;
            stats.count_cached(&mut self.s_emit, self.inst, "emitted", 1);
        }
    }
}

/// Repeating-source kernel (`pcl` `repeating`).
pub(crate) struct RepeatK {
    value: KVal,
    outs: Vec<OutLane>,
    inst: InstanceId,
    s_emit: u32,
}

impl RepeatK {
    fn react(&self, io: &mut Io<'_>) -> Result<(), SimError> {
        for &o in &self.outs {
            io.send(o, self.value)?;
        }
        Ok(())
    }

    fn commit(&mut self, lanes: &[Lane], store: &SignalStore, stats: &mut Stats) {
        for &o in &self.outs {
            if out_transferred(lanes, store, o) {
                stats.count_cached(&mut self.s_emit, self.inst, "emitted", 1);
            }
        }
    }
}

/// Arithmetic-sequence source kernel (`pcl` `seq_source`).
pub(crate) struct SeqK {
    next_val: u64,
    step: u64,
    remaining: u64,
    period: u64,
    out: OutLane,
    inst: InstanceId,
    s_emit: u32,
}

impl SeqK {
    fn react(&self, io: &mut Io<'_>) -> Result<(), SimError> {
        let due = self.remaining > 0 && io.now % self.period == 0;
        if due {
            io.send(self.out, KVal::Word(self.next_val))
        } else {
            io.send_nothing(self.out)
        }
    }

    fn commit(&mut self, lanes: &[Lane], store: &SignalStore, stats: &mut Stats) {
        if out_transferred(lanes, store, self.out) {
            self.next_val = self.next_val.wrapping_add(self.step);
            self.remaining -= 1;
            stats.count_cached(&mut self.s_emit, self.inst, "emitted", 1);
        }
    }
}

/// A monomorphized handler: one closed-enum variant per specializable
/// template, dispatched by a jump table instead of a vtable, with `react`
/// and `commit` bodies transcribed from the dynamic handlers onto lanes.
pub(crate) enum Kernel {
    /// See [`QueueK`].
    Queue(QueueK),
    /// See [`RegisterK`].
    Register(RegisterK),
    /// See [`DelayK`].
    Delay(DelayK),
    /// See [`TeeK`].
    Tee(TeeK),
    /// See [`InverterK`].
    Inverter(InverterK),
    /// See [`AluK`].
    Alu(AluK),
    /// See [`SinkK`].
    Sink(SinkK),
    /// See [`ScriptK`].
    Script(ScriptK),
    /// See [`RepeatK`].
    Repeat(RepeatK),
    /// See [`SeqK`].
    Seq(SeqK),
}

impl Kernel {
    /// The reactive handler (monotone, stateless; see module docs).
    #[inline]
    pub(crate) fn react(&self, io: &mut Io<'_>) -> Result<(), SimError> {
        match self {
            Kernel::Queue(k) => k.react(io),
            Kernel::Register(k) => k.react(io),
            Kernel::Delay(k) => k.react(io),
            Kernel::Tee(k) => k.react(io),
            Kernel::Inverter(k) => k.react(io),
            Kernel::Alu(k) => k.react(io),
            Kernel::Sink(k) => k.react(io),
            Kernel::Script(k) => k.react(io),
            Kernel::Repeat(k) => k.react(io),
            Kernel::Seq(k) => k.react(io),
        }
    }

    /// The commit handler: state updates and statistics, mirroring the
    /// dynamic bodies call-for-call (the statistics entry *set* must match,
    /// not just the totals).
    #[inline]
    pub(crate) fn commit(
        &mut self,
        lanes: &[Lane],
        store: &SignalStore,
        stats: &mut Stats,
        now: u64,
    ) {
        match self {
            Kernel::Queue(k) => k.commit(lanes, store, stats),
            Kernel::Register(k) => k.commit(lanes, store, stats),
            Kernel::Delay(k) => k.commit(lanes, store, stats, now),
            Kernel::Tee(k) => k.commit(lanes, store, stats),
            Kernel::Inverter(_) => {}
            Kernel::Alu(k) => k.commit(lanes, store, stats),
            Kernel::Sink(k) => k.commit(lanes, stats),
            Kernel::Script(k) => k.commit(lanes, store, stats),
            Kernel::Repeat(k) => k.commit(lanes, store, stats),
            Kernel::Seq(k) => k.commit(lanes, store, stats),
        }
    }

    /// Mirror of [`Module::pending`] for the commit-gating decision.
    #[inline]
    pub(crate) fn pending(&self) -> bool {
        match self {
            Kernel::Queue(k) => !k.items.is_empty(),
            _ => false,
        }
    }

    /// Serialize kernel state into the exact byte format the dynamic
    /// module's `state_save` produces, so checkpoints are bit-identical
    /// with specialization on or off and `state_restore` round-trips.
    pub(crate) fn state_blob(&self) -> Result<Vec<u8>, SimError> {
        let mut w = StateWriter::new();
        match self {
            Kernel::Queue(k) => {
                w.put_len(k.items.len());
                for &v in &k.items {
                    w.put_value(&v.to_value())?;
                }
            }
            Kernel::Register(k) => {
                w.put_bool(k.held.is_some());
                if let Some(v) = k.held {
                    w.put_value(&v.to_value())?;
                }
            }
            Kernel::Delay(k) => {
                w.put_len(k.inflight.len());
                for &(v, ready) in &k.inflight {
                    w.put_value(&v.to_value())?;
                    w.put_u64(ready);
                }
            }
            Kernel::Script(k) => {
                w.put_len(k.next);
            }
            Kernel::Seq(k) => {
                w.put_u64(k.next_val);
                w.put_u64(k.remaining);
            }
            Kernel::Tee(_)
            | Kernel::Inverter(_)
            | Kernel::Alu(_)
            | Kernel::Sink(_)
            | Kernel::Repeat(_) => {}
        }
        Ok(w.into_bytes())
    }

    /// Build the kernel for eligible instance `i` from its hint, its
    /// current `state_save` blob, and its port bindings. Any failure keeps
    /// the whole simulator on the dynamic path (never a wrong answer).
    pub(crate) fn materialize(
        hint: KernelHint,
        blob: &[u8],
        topo: &Topology,
        i: usize,
        plan: &SpecPlan,
    ) -> Result<Kernel, SimError> {
        let inst = InstanceId(i as u32);
        let name = topo.name(inst);
        let (ins, outs) = bind_io(topo, inst, plan)?;
        let one_in = || ins.first().copied().unwrap_or(InLane::Unconnected);
        let one_out = || outs.first().copied().unwrap_or(OutLane::Unconnected);
        let kind = plan.kind[i];
        let payload_kind = |what: &str| {
            kind.ok_or_else(|| {
                SimError::internal(format!(
                    "{name}: {what} kernel without a resolved lane type"
                ))
            })
        };
        Ok(match hint {
            KernelHint::Queue { depth, bypass } => {
                if bypass {
                    return Err(SimError::internal(
                        "bypass queue offered for specialization",
                    ));
                }
                let kind = payload_kind("queue")?;
                let mut items = VecDeque::new();
                if !blob.is_empty() {
                    let mut r = StateReader::new(blob);
                    let n = r.get_len()?;
                    if n > depth {
                        return Err(SimError::model(format!(
                            "{name}: restored occupancy {n} exceeds depth {depth}"
                        )));
                    }
                    for _ in 0..n {
                        items.push_back(KVal::from_value(&r.get_value()?, kind, name, "in")?);
                    }
                    r.expect_end()?;
                }
                Kernel::Queue(QueueK {
                    depth,
                    items,
                    ins,
                    outs,
                    inst,
                    s_deq: UNSET,
                    s_enq: UNSET,
                    s_full: UNSET,
                    s_occ: UNSET,
                    s_dist: UNSET,
                })
            }
            KernelHint::Register => {
                let kind = payload_kind("register")?;
                let mut held = None;
                if !blob.is_empty() {
                    let mut r = StateReader::new(blob);
                    if r.get_bool()? {
                        held = Some(KVal::from_value(&r.get_value()?, kind, name, "in")?);
                    }
                    r.expect_end()?;
                }
                Kernel::Register(RegisterK {
                    held,
                    in_: one_in(),
                    out: one_out(),
                    inst,
                    s_fwd: UNSET,
                })
            }
            KernelHint::Delay { latency } => {
                let kind = payload_kind("delay")?;
                let mut inflight = VecDeque::new();
                if !blob.is_empty() {
                    let mut r = StateReader::new(blob);
                    let n = r.get_len()?;
                    if n as u64 > latency + 1 {
                        return Err(SimError::model(format!(
                            "{name}: restored occupancy {n} exceeds latency bound"
                        )));
                    }
                    for _ in 0..n {
                        let v = KVal::from_value(&r.get_value()?, kind, name, "in")?;
                        let ready = r.get_u64()?;
                        inflight.push_back((v, ready));
                    }
                    r.expect_end()?;
                }
                Kernel::Delay(DelayK {
                    latency,
                    inflight,
                    in_: one_in(),
                    out: one_out(),
                    inst,
                    s_del: UNSET,
                    s_acc: UNSET,
                })
            }
            KernelHint::Tee { require_all } => Kernel::Tee(TeeK {
                require_all,
                in_: one_in(),
                outs,
                inst,
                s_con: UNSET,
                s_del: UNSET,
            }),
            KernelHint::Inverter => Kernel::Inverter(InverterK {
                in_: one_in(),
                out: one_out(),
            }),
            KernelHint::Alu { compute } => Kernel::Alu(AluK {
                compute,
                in_: one_in(),
                out: one_out(),
                inst,
                s_ops: UNSET,
            }),
            KernelHint::Sink { collect } => Kernel::Sink(SinkK {
                collect,
                ins,
                inst,
                s_rcv: UNSET,
                s_sum: UNSET,
            }),
            KernelHint::ScriptSource { script } => {
                let kind = payload_kind("script source")?;
                let script = script
                    .iter()
                    .map(|v| KVal::from_value(v, kind, name, "out"))
                    .collect::<Result<Vec<_>, _>>()?;
                let mut next = 0usize;
                if !blob.is_empty() {
                    let mut r = StateReader::new(blob);
                    next = r.get_len()?;
                    r.expect_end()?;
                    if next > script.len() {
                        return Err(SimError::model(format!(
                            "{name}: restored cursor {next} beyond script length {}",
                            script.len()
                        )));
                    }
                }
                Kernel::Script(ScriptK {
                    script,
                    next,
                    out: one_out(),
                    inst,
                    s_emit: UNSET,
                })
            }
            KernelHint::RepeatingSource { value } => {
                let kind = payload_kind("repeating source")?;
                Kernel::Repeat(RepeatK {
                    value: KVal::from_value(&value, kind, name, "out")?,
                    outs,
                    inst,
                    s_emit: UNSET,
                })
            }
            KernelHint::SeqSource {
                start,
                count,
                step,
                period,
            } => {
                let mut next_val = start;
                let mut remaining = count;
                if !blob.is_empty() {
                    let mut r = StateReader::new(blob);
                    next_val = r.get_u64()?;
                    remaining = r.get_u64()?;
                    r.expect_end()?;
                }
                Kernel::Seq(SeqK {
                    next_val,
                    step,
                    remaining,
                    period,
                    out: one_out(),
                    inst,
                    s_emit: UNSET,
                })
            }
        })
    }
}

/// Resolve the instance's port slots into lane bindings. Every
/// specializable template has at most one input port and one output port,
/// so the per-port slots concatenate without ambiguity.
fn bind_io(
    topo: &Topology,
    inst: InstanceId,
    plan: &SpecPlan,
) -> Result<(Vec<InLane>, Vec<OutLane>), SimError> {
    let info = topo.instance(inst);
    let mut ins = Vec::new();
    let mut outs = Vec::new();
    for (p, ps) in info.spec.ports.iter().enumerate() {
        for &e in info.port_edges(PortId(p as u16)) {
            let l = plan.lane_of[e.0 as usize];
            match ps.dir {
                Dir::In => {
                    if l == NO_LANE {
                        return Err(SimError::internal(format!(
                            "{}: eligible instance fed by a slow edge",
                            info.name
                        )));
                    }
                    ins.push(InLane::Fast(l));
                }
                Dir::Out => outs.push(if l == NO_LANE {
                    OutLane::Slow(e)
                } else {
                    OutLane::Fast(l)
                }),
            }
        }
    }
    Ok((ins, outs))
}

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

/// Sentinel in [`SpecPlan::lane_of`] for edges that stay on the store.
pub(crate) const NO_LANE: u32 = u32::MAX;

/// The compile-time specialization decision for one topology: which
/// instances run as kernels, which edges become lanes, and why the rest
/// stayed dynamic.
pub(crate) struct SpecPlan {
    /// Per instance: lowered to a kernel?
    pub(crate) eligible: Vec<bool>,
    /// Per ineligible instance: a human-readable demotion reason
    /// (`None` for eligible instances).
    pub(crate) reason: Vec<Option<String>>,
    /// Per instance: the unboxed shape of values it emits/holds, once
    /// resolved. `None` for sinks and dynamic instances.
    pub(crate) kind: Vec<Option<ValKind>>,
    /// Per edge: its lane index, or [`NO_LANE`].
    pub(crate) lane_of: Vec<u32>,
    /// Edge ids of the lanes, in lane order.
    pub(crate) lane_edges: Vec<EdgeId>,
    /// Per compiled-plan island ordinal: true iff every member is eligible
    /// (islands specialize wholesale or not at all).
    pub(crate) spec_islands: Vec<bool>,
    /// Number of eligible instances.
    pub(crate) n_eligible: usize,
}

/// Decide, per instance of an already compiled plan, whether its handler
/// lowers to a [`Kernel`]. Pure analysis: no kernels are built here (state
/// is captured lazily, at first specialized step), so the summary path can
/// run it on a `&Simulator`.
pub(crate) fn classify(
    topo: &Topology,
    plan: &CompiledPlan,
    modules: &[Box<dyn Module>],
) -> SpecPlan {
    let n = topo.instance_count();
    let n_edges = topo.edge_count();
    let mut eligible = vec![false; n];
    let mut reason: Vec<Option<String>> = vec![None; n];
    let mut kind: Vec<Option<ValKind>> = vec![None; n];

    // In/out adjacency, by instance.
    let mut in_edges: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut out_edges: Vec<Vec<u32>> = vec![Vec::new(); n];
    for e in 0..n_edges {
        let em = topo.edge_meta(EdgeId(e as u32));
        out_edges[em.src.inst.0 as usize].push(e as u32);
        in_edges[em.dst.inst.0 as usize].push(e as u32);
    }

    let demote =
        |eligible: &mut Vec<bool>, reason: &mut Vec<Option<String>>, i: usize, why: String| {
            if eligible[i] {
                eligible[i] = false;
                reason[i] = Some(why);
            }
        };

    // Pass 1: hints, and the demotions decidable per-instance.
    let hints: Vec<Option<KernelHint>> = modules.iter().map(|m| m.specialize()).collect();
    for i in 0..n {
        match &hints[i] {
            None => {
                reason[i] = Some("dynamic template (no kernel hint)".to_owned());
            }
            Some(KernelHint::Queue { bypass: true, .. }) => {
                reason[i] = Some("bypass queue (combinational fall-through)".to_owned());
            }
            Some(_) => eligible[i] = true,
        }
    }

    // Pass 2: lane-type inference to a fixed point. Sources fix their own
    // kind; pass-through templates join the kinds of their producers.
    for i in 0..n {
        if !eligible[i] {
            continue;
        }
        match &hints[i] {
            Some(KernelHint::ScriptSource { script }) => {
                // Every value must share the first's unboxed shape; an
                // empty script trivially types as words.
                let k = match script.first() {
                    None => Some(ValKind::Word),
                    Some(first) => match kind_of(first) {
                        Some(fk) if script.iter().all(|v| kind_of(v) == Some(fk)) => Some(fk),
                        _ => None,
                    },
                };
                match k {
                    Some(kv) => kind[i] = Some(kv),
                    None => demote(
                        &mut eligible,
                        &mut reason,
                        i,
                        "script values are not uniformly word-shaped".to_owned(),
                    ),
                }
            }
            Some(KernelHint::RepeatingSource { value }) => match kind_of(value) {
                Some(kv) => kind[i] = Some(kv),
                None => demote(
                    &mut eligible,
                    &mut reason,
                    i,
                    format!("repeated value has unsupported shape ({})", value.kind()),
                ),
            },
            Some(KernelHint::SeqSource { .. })
            | Some(KernelHint::Alu { .. })
            | Some(KernelHint::Inverter) => kind[i] = Some(ValKind::Word),
            _ => {}
        }
    }
    // Pass-through joins, iterated to a fixed point.
    loop {
        let mut changed = false;
        for i in 0..n {
            if !eligible[i] || kind[i].is_some() {
                continue;
            }
            let joins = matches!(
                &hints[i],
                Some(KernelHint::Queue { .. })
                    | Some(KernelHint::Register)
                    | Some(KernelHint::Delay { .. })
                    | Some(KernelHint::Tee { .. })
            );
            if !joins {
                continue;
            }
            if in_edges[i].is_empty() {
                kind[i] = Some(ValKind::Word);
                changed = true;
                continue;
            }
            let mut k: Option<ValKind> = None;
            let mut ok = true;
            for &e in &in_edges[i] {
                let src = topo.edge_meta(EdgeId(e)).src.inst.0 as usize;
                match (kind[src], k) {
                    (Some(sk), None) => k = Some(sk),
                    (Some(sk), Some(cur)) if sk == cur => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && k.is_some() {
                kind[i] = k;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 3: island membership + internal data-acyclicity. A member of a
    // data-cyclic island (a combinational ring) relies on fixed-point
    // iteration the straight-line kernels don't do.
    let n_islands = plan.island_count();
    let mut island_members: Vec<Vec<u32>> = vec![Vec::new(); n_islands];
    for node in plan.nodes() {
        if let PlanNode::Island { island, members } = node {
            island_members[*island as usize] = members.clone();
        }
    }
    let mut island_cyclic = vec![false; n_islands];
    for (isl, members) in island_members.iter().enumerate() {
        // Kahn's algorithm over data/enable arcs internal to the island
        // (single-member islands with a self-loop edge are caught too).
        let pos = |inst: u32| members.iter().position(|&m| m == inst);
        let mut indeg = vec![0usize; members.len()];
        let mut arcs: Vec<Vec<usize>> = vec![Vec::new(); members.len()];
        for &m in members {
            for &e in &out_edges[m as usize] {
                let dst = topo.edge_meta(EdgeId(e)).dst.inst.0;
                if let (Some(s), Some(d)) = (pos(m), pos(dst)) {
                    arcs[s].push(d);
                    indeg[d] += 1;
                }
            }
        }
        let mut ready: Vec<usize> = (0..members.len()).filter(|&j| indeg[j] == 0).collect();
        let mut seen = 0usize;
        while let Some(j) = ready.pop() {
            seen += 1;
            for &d in &arcs[j] {
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    ready.push(d);
                }
            }
        }
        island_cyclic[isl] = seen != members.len();
    }
    let mut in_cyclic_island = vec![false; n];
    for (isl, members) in island_members.iter().enumerate() {
        if island_cyclic[isl] {
            for &m in members {
                in_cyclic_island[m as usize] = true;
            }
        }
    }
    for i in 0..n {
        if eligible[i] && in_cyclic_island[i] {
            demote(
                &mut eligible,
                &mut reason,
                i,
                "data-cyclic island (needs fixed-point iteration)".to_owned(),
            );
        }
        if eligible[i] && kind[i].is_none() && !matches!(&hints[i], Some(KernelHint::Sink { .. })) {
            demote(
                &mut eligible,
                &mut reason,
                i,
                "wire type did not resolve to an unboxed shape".to_owned(),
            );
        }
    }
    // Operand-shape constraints against the (now final) producer kinds.
    for i in 0..n {
        if !eligible[i] {
            continue;
        }
        match &hints[i] {
            Some(KernelHint::Alu { .. }) => {
                for &e in &in_edges[i] {
                    let src = topo.edge_meta(EdgeId(e)).src.inst.0 as usize;
                    if kind[src] != Some(ValKind::Tup3) {
                        demote(
                            &mut eligible,
                            &mut reason,
                            i,
                            "operand wire does not carry (op, a, b) word tuples".to_owned(),
                        );
                        break;
                    }
                }
            }
            Some(KernelHint::Inverter) => {
                for &e in &in_edges[i] {
                    let src = topo.edge_meta(EdgeId(e)).src.inst.0 as usize;
                    if !matches!(kind[src], Some(ValKind::Word) | Some(ValKind::Bool)) {
                        demote(
                            &mut eligible,
                            &mut reason,
                            i,
                            "input wire is not word-shaped".to_owned(),
                        );
                        break;
                    }
                }
            }
            _ => {}
        }
    }

    // Pass 4: closure to a fixed point over the structural rules —
    // producers of eligible instances must be eligible, ack-readers need
    // specialized consumers, islands are all-or-none.
    loop {
        let mut changed = false;
        for i in 0..n {
            if !eligible[i] {
                continue;
            }
            for &e in &in_edges[i] {
                let src = topo.edge_meta(EdgeId(e)).src.inst.0 as usize;
                if !eligible[src] {
                    demote(
                        &mut eligible,
                        &mut reason,
                        i,
                        format!(
                            "fed by dynamic instance {:?}",
                            topo.name(InstanceId(src as u32))
                        ),
                    );
                    changed = true;
                    break;
                }
            }
            if !eligible[i] {
                continue;
            }
            if topo.instance(InstanceId(i as u32)).spec.reads_ack_in_react {
                for &e in &out_edges[i] {
                    let dst = topo.edge_meta(EdgeId(e)).dst.inst.0 as usize;
                    if !eligible[dst] {
                        demote(
                            &mut eligible,
                            &mut reason,
                            i,
                            format!(
                                "reads acks from dynamic consumer {:?}",
                                topo.name(InstanceId(dst as u32))
                            ),
                        );
                        changed = true;
                        break;
                    }
                }
            }
        }
        for members in &island_members {
            if members.iter().any(|&m| !eligible[m as usize])
                && members.iter().any(|&m| eligible[m as usize])
            {
                for &m in members {
                    if eligible[m as usize] {
                        demote(
                            &mut eligible,
                            &mut reason,
                            m as usize,
                            "fixed-point island contains dynamic instances".to_owned(),
                        );
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Lanes: an edge is fast iff both endpoints are eligible.
    let mut lane_of = vec![NO_LANE; n_edges];
    let mut lane_edges = Vec::new();
    for e in 0..n_edges {
        let em = topo.edge_meta(EdgeId(e as u32));
        if eligible[em.src.inst.0 as usize] && eligible[em.dst.inst.0 as usize] {
            lane_of[e] = lane_edges.len() as u32;
            lane_edges.push(EdgeId(e as u32));
        }
    }
    let spec_islands = island_members
        .iter()
        .map(|members| !members.is_empty() && members.iter().all(|&m| eligible[m as usize]))
        .collect();
    let n_eligible = eligible.iter().filter(|&&e| e).count();

    SpecPlan {
        eligible,
        reason,
        kind,
        lane_of,
        lane_edges,
        spec_islands,
        n_eligible,
    }
}

// ---------------------------------------------------------------------------
// Runtime state
// ---------------------------------------------------------------------------

/// The specialized half of a compiled plan at run time: the classification,
/// the lane table, and (once live) the materialized kernels.
pub(crate) struct SpecState {
    /// The classification.
    pub(crate) plan: SpecPlan,
    /// Kernels, indexed by instance (`None` for dynamic instances).
    pub(crate) kernels: Vec<Option<Kernel>>,
    /// Lane table, in [`SpecPlan::lane_edges`] order.
    pub(crate) lanes: Vec<Lane>,
    /// True once kernels hold live state (module state has been captured
    /// into them and not yet written back).
    pub(crate) live: bool,
}

impl SpecState {
    /// Classify and build the runtime shell; `None` when nothing is
    /// eligible, so fully dynamic plans carry zero overhead.
    pub(crate) fn build(
        topo: &Topology,
        plan: &CompiledPlan,
        modules: &[Box<dyn Module>],
    ) -> Option<Box<SpecState>> {
        let plan = classify(topo, plan, modules);
        if plan.n_eligible == 0 {
            return None;
        }
        let lanes = plan.lane_edges.iter().map(|&e| Lane::new(e)).collect();
        Some(Box::new(SpecState {
            plan,
            kernels: Vec::new(),
            lanes,
            live: false,
        }))
    }

    /// Capture module state into freshly built kernels. Statistics slots
    /// start unresolved, so re-materialization after a restore re-binds
    /// against the current `Stats` arena.
    pub(crate) fn materialize(
        &mut self,
        topo: &Topology,
        modules: &[Box<dyn Module>],
    ) -> Result<(), SimError> {
        let n = topo.instance_count();
        self.kernels.clear();
        self.kernels.resize_with(n, || None);
        for i in 0..n {
            if !self.plan.eligible[i] {
                continue;
            }
            let hint = modules[i].specialize().ok_or_else(|| {
                SimError::internal(format!(
                    "{}: eligible instance stopped offering a kernel hint",
                    topo.name(InstanceId(i as u32))
                ))
            })?;
            let blob = modules[i].state_save()?;
            self.kernels[i] = Some(Kernel::materialize(hint, &blob, topo, i, &self.plan)?);
        }
        for l in &mut self.lanes {
            l.reset();
        }
        self.live = true;
        Ok(())
    }

    /// Write kernel state back into the modules and drop the kernels, so
    /// the dynamic path (probes, faults, snapshots-by-module) sees exactly
    /// the state the kernels advanced to.
    pub(crate) fn sync_back(&mut self, modules: &mut [Box<dyn Module>]) -> Result<(), SimError> {
        if self.live {
            for (i, k) in self.kernels.iter().enumerate() {
                if let Some(k) = k {
                    modules[i].state_restore(&k.state_blob()?)?;
                }
            }
            self.live = false;
        }
        self.kernels.clear();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Plan summary
// ---------------------------------------------------------------------------

/// One instance's row in a [`PlanSummary`].
#[derive(Clone, Debug)]
pub struct InstanceSummary {
    /// Instance name.
    pub name: String,
    /// Template name.
    pub template: String,
    /// True if the instance runs as a specialized kernel.
    pub specialized: bool,
    /// For dynamic instances: why specialization was declined.
    pub reason: Option<String>,
}

/// Which instances of a compiled plan specialize, and why the rest stayed
/// dynamic — the payload behind `Simulator::plan_summary()` and the
/// examples' `--explain-plan` flag.
#[derive(Clone, Debug)]
pub struct PlanSummary {
    /// Per-instance rows, in instance-id order.
    pub instances: Vec<InstanceSummary>,
    /// Number of specialized instances.
    pub specialized: usize,
    /// Number of dynamic instances.
    pub dynamic: usize,
    /// Edges lowered to unboxed lanes.
    pub fast_edges: usize,
    /// Total edges in the topology.
    pub total_edges: usize,
    /// False when specialization is administratively off (disabled via
    /// `set_specialization(false)`, or suppressed by probes/faults).
    pub enabled: bool,
}

impl SpecPlan {
    /// Render the classification for `topo`.
    pub(crate) fn summary(&self, topo: &Topology, enabled: bool) -> PlanSummary {
        let instances = (0..topo.instance_count())
            .map(|i| {
                let info = topo.instance(InstanceId(i as u32));
                InstanceSummary {
                    name: info.name.clone(),
                    template: info.spec.template.clone(),
                    specialized: self.eligible[i],
                    reason: self.reason[i].clone(),
                }
            })
            .collect::<Vec<_>>();
        PlanSummary {
            specialized: self.n_eligible,
            dynamic: instances.len() - self.n_eligible,
            fast_edges: self.lane_edges.len(),
            total_edges: self.lane_of.len(),
            enabled,
            instances,
        }
    }
}

impl fmt::Display for PlanSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan: {} specialized, {} dynamic; {}/{} edges on unboxed lanes{}",
            self.specialized,
            self.dynamic,
            self.fast_edges,
            self.total_edges,
            if self.enabled {
                ""
            } else {
                " (specialization disabled)"
            },
        )?;
        for inst in &self.instances {
            if inst.specialized {
                writeln!(f, "  {} ({}): specialized", inst.name, inst.template)?;
            } else {
                writeln!(
                    f,
                    "  {} ({}): dynamic — {}",
                    inst.name,
                    inst.template,
                    inst.reason.as_deref().unwrap_or("not classified"),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kval_roundtrips_through_value() {
        for (kv, kind) in [
            (KVal::Word(7), ValKind::Word),
            (KVal::Bool(true), ValKind::Bool),
            (KVal::Tup3([1, 2, 3]), ValKind::Tup3),
        ] {
            let v = kv.to_value();
            assert_eq!(kind_of(&v), Some(kind));
            assert_eq!(KVal::from_value(&v, kind, "i", "p").unwrap(), kv);
        }
    }

    #[test]
    fn kind_of_rejects_dynamic_shapes() {
        assert_eq!(kind_of(&Value::Unit), None);
        assert_eq!(kind_of(&Value::Int(3)), None);
        assert_eq!(kind_of(&Value::Float(0.5)), None);
        assert_eq!(
            kind_of(&Value::Tuple(Arc::new(vec![
                Value::Word(1),
                Value::Word(2)
            ]))),
            None
        );
        assert_eq!(
            kind_of(&Value::Tuple(Arc::new(vec![
                Value::Word(1),
                Value::Bool(false),
                Value::Word(2)
            ]))),
            None
        );
    }

    #[test]
    fn from_value_mismatch_is_structured_type_error() {
        let err = KVal::from_value(&Value::Unit, ValKind::Word, "q0", "in").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("q0.in"), "missing site: {msg}");
        assert!(msg.contains("unit"), "missing kind: {msg}");
    }

    #[test]
    fn kval_as_word_mirrors_value_as_word() {
        for kv in [KVal::Word(9), KVal::Bool(true), KVal::Tup3([0, 1, 2])] {
            assert_eq!(kv.as_word(), kv.to_value().as_word());
        }
    }

    #[test]
    fn lane_writes_are_first_touch_then_idempotent() {
        let mut lanes = vec![Lane::new(EdgeId(0))];
        let mut store = SignalStore::new(0);
        let mut io = Io {
            lanes: &mut lanes,
            store: &mut store,
            newly: None,
            now: 0,
        };
        io.send(OutLane::Fast(0), KVal::Word(3)).unwrap();
        io.send(OutLane::Fast(0), KVal::Word(3)).unwrap();
        assert!(io.send(OutLane::Fast(0), KVal::Word(4)).is_err());
        io.set_ack(InLane::Fast(0), true).unwrap();
        assert!(io.lanes[0].fully_resolved());
        assert!(io.lanes[0].completes());
    }

    #[test]
    fn island_wake_records_newly_resolved_wires() {
        let mut lanes = vec![Lane::new(EdgeId(5))];
        let mut store = SignalStore::new(0);
        let mut newly = Vec::new();
        let mut io = Io {
            lanes: &mut lanes,
            store: &mut store,
            newly: Some(&mut newly),
            now: 0,
        };
        io.send(OutLane::Fast(0), KVal::Word(1)).unwrap();
        io.set_ack(InLane::Fast(0), false).unwrap();
        assert_eq!(
            newly,
            vec![
                (EdgeId(5), Wire::Data),
                (EdgeId(5), Wire::Enable),
                (EdgeId(5), Wire::Ack)
            ]
        );
    }

    #[test]
    fn unconnected_slots_mirror_dynamic_defaults() {
        let mut lanes: Vec<Lane> = Vec::new();
        let mut store = SignalStore::new(0);
        let mut io = Io {
            lanes: &mut lanes,
            store: &mut store,
            newly: None,
            now: 0,
        };
        assert_eq!(io.in_data(InLane::Unconnected), NO_S);
        assert_eq!(io.out_ack(OutLane::Unconnected), YES_S);
        io.send(OutLane::Unconnected, KVal::Word(1)).unwrap();
        io.set_ack(InLane::Unconnected, true).unwrap();
        assert!(out_transferred(&io.lanes, io.store, OutLane::Unconnected));
        assert_eq!(in_transferred(io.lanes, InLane::Unconnected), None);
    }
}
