//! Deterministic handshake-level fault injection.
//!
//! The three-signal contract and the default control semantics (paper
//! §2.1) exist so independently developed components keep interoperating
//! when one of them misbehaves. That guarantee is only testable if
//! misbehaviour can be *injected*: a [`FaultPlan`] describes, ahead of a
//! run, which wires of which connections get dropped, stalled or
//! corrupted at which time-steps, and which instances are forced to panic
//! or run slow. Plans are pure data — a deterministic function of their
//! seed — so the same plan replayed on any scheduler perturbs the same
//! writes the same way, and a chaos soak that finds a bug is replayable
//! from its seed alone.
//!
//! Faults act at the kernel's single write choke point: a signal fault on
//! `(edge, wire)` transforms every *module* write to that wire during the
//! fault's step window. The kernel's own default-semantics writes are
//! never faulted — defaults are the safety net under test, not the test
//! subject. Because the transformation is a deterministic function of
//! `(kind, edge, wire, step, seed)`, faulted modules still resolve wires
//! monotonically and the per-step fixed point stays unique, which is what
//! keeps probe streams byte-identical across schedulers.
//!
//! The fault-off hot path pays nothing: a simulator without a plan runs
//! the same monomorphized reaction loop as before (see
//! `drain_impl::<PROBED, RESIL>` in `crate::exec`).

use crate::netlist::{EdgeId, InstanceId};
use crate::signal::{Res, Wire, WireWrite};
use crate::topology::Topology;
use crate::value::Value;

/// What a signal fault does to writes on its wire while active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Swallow the write: the wire stays `Unknown` until the default
    /// phase resolves it (models a lost signal).
    Drop,
    /// Force the write to `No`: data withheld / not enabled / refused
    /// (models a stuck-at-absent wire or a stalled consumer).
    Stall,
    /// Corrupt the written value: word payloads are XORed with a
    /// seed-derived mask, enable/ack polarity is flipped (models bit
    /// errors on the wire).
    Corrupt,
}

impl FaultKind {
    /// Report label ("drop" / "stall" / "corrupt").
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Stall => "stall",
            FaultKind::Corrupt => "corrupt",
        }
    }
}

/// One wire-level fault: `kind` applies to module writes of `wire` on
/// `edge` for every step in `[from, until)`.
#[derive(Clone, Debug, PartialEq)]
pub struct SignalFault {
    /// Target connection.
    pub edge: EdgeId,
    /// Which of its three wires.
    pub wire: Wire,
    /// Transformation applied while active.
    pub kind: FaultKind,
    /// First step the fault is active (inclusive).
    pub from: u64,
    /// First step the fault is inactive again (exclusive).
    pub until: u64,
}

/// An instance-level fault.
#[derive(Clone, Debug, PartialEq)]
pub enum InstFaultKind {
    /// Force a panic at the instance's first `react` of step `at`.
    Panic {
        /// Step at which the panic fires.
        at: u64,
    },
    /// Busy-delay every `react` of the instance by `spin_us`
    /// microseconds for steps in `[from, until)` — a latency spike that
    /// perturbs host timing without touching simulated behaviour.
    Latency {
        /// First affected step (inclusive).
        from: u64,
        /// First unaffected step (exclusive).
        until: u64,
        /// Host-time delay per `react`, in microseconds.
        spin_us: u64,
    },
}

/// One instance-level fault entry.
#[derive(Clone, Debug, PartialEq)]
pub struct InstanceFault {
    /// Target instance.
    pub inst: InstanceId,
    /// What happens to it.
    pub kind: InstFaultKind,
}

/// What the kernel does when a module handler fails (panics or returns
/// an error) during a resilient run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Abort the run with a structured error — today's strict behaviour.
    #[default]
    Abort,
    /// Isolate the faulting instance for the rest of the run: its
    /// handlers are never invoked again and its ports fall back to the
    /// default control semantics, so the rest of the system keeps
    /// running degraded (paper §2.2: partial specifications execute).
    Quarantine,
}

/// A deterministic, seed-driven fault-injection plan.
///
/// Build one explicitly with the `drop_wire` / `stall_wire` /
/// `corrupt_wire` / `panic_at` / `latency` builders, or draw a random
/// plan for a given topology with [`FaultPlan::random`]. Install on a
/// simulator with `Simulator::set_fault_plan`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    signals: Vec<SignalFault>,
    instances: Vec<InstanceFault>,
}

impl FaultPlan {
    /// An empty plan; `seed` parameterizes the corruption masks.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The seed the plan (and its corruption masks) derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Add a [`FaultKind::Drop`] on `wire` of `edge` for `[from, until)`.
    pub fn drop_wire(mut self, edge: EdgeId, wire: Wire, from: u64, until: u64) -> Self {
        self.signals.push(SignalFault {
            edge,
            wire,
            kind: FaultKind::Drop,
            from,
            until,
        });
        self
    }

    /// Add a [`FaultKind::Stall`] on `wire` of `edge` for `[from, until)`.
    pub fn stall_wire(mut self, edge: EdgeId, wire: Wire, from: u64, until: u64) -> Self {
        self.signals.push(SignalFault {
            edge,
            wire,
            kind: FaultKind::Stall,
            from,
            until,
        });
        self
    }

    /// Add a [`FaultKind::Corrupt`] on `wire` of `edge` for `[from, until)`.
    pub fn corrupt_wire(mut self, edge: EdgeId, wire: Wire, from: u64, until: u64) -> Self {
        self.signals.push(SignalFault {
            edge,
            wire,
            kind: FaultKind::Corrupt,
            from,
            until,
        });
        self
    }

    /// Force `inst` to panic at its first `react` of step `at`.
    pub fn panic_at(mut self, inst: InstanceId, at: u64) -> Self {
        self.instances.push(InstanceFault {
            inst,
            kind: InstFaultKind::Panic { at },
        });
        self
    }

    /// Delay every `react` of `inst` by `spin_us` µs for `[from, until)`.
    pub fn latency(mut self, inst: InstanceId, from: u64, until: u64, spin_us: u64) -> Self {
        self.instances.push(InstanceFault {
            inst,
            kind: InstFaultKind::Latency {
                from,
                until,
                spin_us,
            },
        });
        self
    }

    /// The wire-level fault entries.
    pub fn signal_faults(&self) -> &[SignalFault] {
        &self.signals
    }

    /// The instance-level fault entries.
    pub fn instance_faults(&self) -> &[InstanceFault] {
        &self.instances
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.signals.is_empty() && self.instances.is_empty()
    }

    /// Draw a random plan for `topo`, fully determined by `seed`:
    /// roughly `intensity × edges` wire faults (drop/stall/corrupt on a
    /// random wire, with a random step window inside `[0, horizon)`) and
    /// up to `intensity × instances` forced panics. Latency spikes are
    /// never drawn (they only perturb host time); add them explicitly
    /// with [`FaultPlan::latency`] when wanted.
    pub fn random(seed: u64, topo: &Topology, horizon: u64, intensity: f64) -> Self {
        let mut rng = SplitMix::new(seed);
        let mut plan = FaultPlan::new(seed);
        let horizon = horizon.max(1);
        let n_edges = topo.edge_count() as u64;
        let n_insts = topo.instance_count() as u64;
        let n_signal = ((n_edges as f64 * intensity).ceil() as u64).min(n_edges.max(1));
        for _ in 0..n_signal {
            if n_edges == 0 {
                break;
            }
            let edge = EdgeId((rng.next() % n_edges) as u32);
            let wire = match rng.next() % 3 {
                0 => Wire::Data,
                1 => Wire::Enable,
                _ => Wire::Ack,
            };
            let kind = match rng.next() % 3 {
                0 => FaultKind::Drop,
                1 => FaultKind::Stall,
                _ => FaultKind::Corrupt,
            };
            let from = rng.next() % horizon;
            let len = 1 + rng.next() % 16;
            let fault = SignalFault {
                edge,
                wire,
                kind,
                from,
                until: (from + len).min(horizon),
            };
            plan.signals.push(fault);
        }
        let n_panic = ((n_insts as f64 * intensity * 0.25).ceil() as u64).min(n_insts.max(1));
        for _ in 0..n_panic {
            if n_insts == 0 {
                break;
            }
            let inst = InstanceId((rng.next() % n_insts) as u32);
            let at = rng.next() % horizon;
            plan.instances.push(InstanceFault {
                inst,
                kind: InstFaultKind::Panic { at },
            });
        }
        plan
    }

    /// Compile into the per-step lookup form the kernel uses.
    pub(crate) fn compile(&self, n_instances: usize) -> CompiledFaults {
        let mut instances = self.instances.clone();
        instances.sort_by_key(|f| f.inst.0);
        let mut signals = self.signals.clone();
        signals.sort_by_key(|f| (f.edge.0, wire_idx(f.wire)));
        CompiledFaults {
            seed: self.seed,
            signals,
            instances,
            quarantine_on_panic: instances_with_panics(&self.instances, n_instances),
        }
    }
}

fn instances_with_panics(faults: &[InstanceFault], n: usize) -> Vec<bool> {
    let mut v = vec![false; n];
    for f in faults {
        if matches!(f.kind, InstFaultKind::Panic { .. }) {
            if let Some(slot) = v.get_mut(f.inst.0 as usize) {
                *slot = true;
            }
        }
    }
    v
}

pub(crate) fn wire_idx(w: Wire) -> u8 {
    match w {
        Wire::Data => 0,
        Wire::Enable => 1,
        Wire::Ack => 2,
    }
}

/// The plan in kernel form: entries pre-sorted so per-step activation
/// tables come out in deterministic `(edge, wire)` / instance order, and
/// probe emission needs no extra sorting.
#[derive(Debug)]
pub(crate) struct CompiledFaults {
    pub(crate) seed: u64,
    signals: Vec<SignalFault>,
    instances: Vec<InstanceFault>,
    /// Instances the plan will eventually panic (unused today, kept for
    /// schedule introspection in tests).
    #[allow(dead_code)]
    quarantine_on_panic: Vec<bool>,
}

impl CompiledFaults {
    /// Remove every instance-level fault targeting `inst`. The recovery
    /// path calls this before rolling back to the last checkpoint, so
    /// the replayed steps no longer re-inject the failure that triggered
    /// the rollback. Returns how many entries were masked.
    pub(crate) fn mask_instance(&mut self, inst: u32) -> usize {
        let before = self.instances.len();
        self.instances.retain(|f| f.inst.0 != inst);
        before - self.instances.len()
    }

    /// Remove every wire-level fault on `edge` (all three wires) — the
    /// divergence-recovery analogue of [`CompiledFaults::mask_instance`].
    /// Returns how many entries were masked.
    pub(crate) fn mask_edge(&mut self, edge: u32) -> usize {
        let before = self.signals.len();
        self.signals.retain(|f| f.edge.0 != edge);
        before - self.signals.len()
    }

    /// Build the active table for `now`. Plans are small (tens of
    /// entries), so a linear scan per step is cheaper than anything
    /// fancier — and only runs when a plan is installed at all.
    pub(crate) fn activate(&self, now: u64, out: &mut ActiveFaults) {
        out.clear();
        for f in &self.signals {
            if f.from <= now && now < f.until {
                // Later entries on the same (edge, wire) are shadowed by
                // the first: one active fault per wire.
                let key = (f.edge.0, wire_idx(f.wire));
                if out.signals.last().map(|s| (s.0, s.1)) != Some(key) {
                    out.signals.push((f.edge.0, wire_idx(f.wire), f.kind));
                }
            }
        }
        for f in &self.instances {
            match f.kind {
                InstFaultKind::Panic { at } if at == now => out.panics.push(f.inst.0),
                InstFaultKind::Latency {
                    from,
                    until,
                    spin_us,
                } if from <= now && now < until => out.latency.push((f.inst.0, spin_us)),
                _ => {}
            }
        }
        out.panics.dedup();
    }
}

/// Faults active in the current step, in deterministic order: signals
/// sorted by `(edge, wire)`, instances by id.
#[derive(Debug, Default)]
pub(crate) struct ActiveFaults {
    pub(crate) signals: Vec<(u32, u8, FaultKind)>,
    pub(crate) panics: Vec<u32>,
    pub(crate) latency: Vec<(u32, u64)>,
}

impl ActiveFaults {
    pub(crate) fn clear(&mut self) {
        self.signals.clear();
        self.panics.clear();
        self.latency.clear();
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.signals.is_empty() && self.panics.is_empty() && self.latency.is_empty()
    }

    /// The active fault on `(edge, wire)`, if any.
    pub(crate) fn signal(&self, edge: u32, wire: Wire) -> Option<FaultKind> {
        let key = (edge, wire_idx(wire));
        self.signals
            .binary_search_by_key(&key, |s| (s.0, s.1))
            .ok()
            .map(|i| self.signals[i].2)
    }

    /// True when `inst` must panic at its first react this step.
    pub(crate) fn panics(&self, inst: u32) -> bool {
        self.panics.binary_search(&inst).is_ok()
    }

    /// The latency spike for `inst` this step, in microseconds.
    pub(crate) fn latency_us(&self, inst: u32) -> Option<u64> {
        self.latency
            .binary_search_by_key(&inst, |l| l.0)
            .ok()
            .map(|i| self.latency[i].1)
    }
}

/// Apply a fault to a module's wire write. Returns `None` when the write
/// is swallowed ([`FaultKind::Drop`]). Deterministic in
/// `(kind, edge, wire, now, seed)` and in the written value, so repeated
/// writes of equal values stay idempotent and the per-step fixed point
/// stays unique under every scheduler.
pub(crate) fn apply_fault(
    kind: FaultKind,
    w: WireWrite,
    edge: u32,
    now: u64,
    seed: u64,
) -> Option<WireWrite> {
    match kind {
        FaultKind::Drop => None,
        FaultKind::Stall => Some(match w {
            WireWrite::Data(_) => WireWrite::Data(Res::No),
            WireWrite::Enable(_) => WireWrite::Enable(Res::No),
            WireWrite::Ack(_) => WireWrite::Ack(Res::No),
        }),
        FaultKind::Corrupt => Some(match w {
            // Word payloads get a seed-derived XOR mask; other payload
            // shapes pass through unchanged (type-preserving corruption
            // keeps downstream models running, which is the point of a
            // survivable fault).
            WireWrite::Data(Res::Yes(Value::Word(v))) => {
                WireWrite::Data(Res::Yes(Value::Word(v ^ corruption_mask(edge, now, seed))))
            }
            WireWrite::Data(d) => WireWrite::Data(d),
            // Control wires flip polarity.
            WireWrite::Enable(Res::Yes(())) => WireWrite::Enable(Res::No),
            WireWrite::Enable(_) => WireWrite::Enable(Res::Yes(())),
            WireWrite::Ack(Res::Yes(())) => WireWrite::Ack(Res::No),
            WireWrite::Ack(_) => WireWrite::Ack(Res::Yes(())),
        }),
    }
}

/// Non-zero XOR mask for [`FaultKind::Corrupt`] on a data word.
fn corruption_mask(edge: u32, now: u64, seed: u64) -> u64 {
    let m = splitmix(seed ^ (u64::from(edge) << 32) ^ now.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    m | 1
}

/// Finalizer of the SplitMix64 generator — shared with the supervisor's
/// retry-backoff jitter so the core crate keeps a single deterministic
/// mixing function.
pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Tiny deterministic generator for [`FaultPlan::random`] — the core
/// crate stays dependency-free, and plan determinism does not hinge on
/// any external crate's stream stability.
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleSpec;
    use crate::netlist::NetlistBuilder;
    use crate::prelude::{CommitCtx, Module, ReactCtx, SimError};

    struct Nop;
    impl Module for Nop {
        fn react(&mut self, _: &mut ReactCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
        fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
    }

    fn tiny_topo() -> Topology {
        let mut b = NetlistBuilder::new();
        let s = b
            .add(
                "s",
                ModuleSpec::new("src").output("out", 1, 1),
                Box::new(Nop),
            )
            .unwrap();
        let k = b
            .add("k", ModuleSpec::new("snk").input("in", 1, 1), Box::new(Nop))
            .unwrap();
        b.connect(s, "out", k, "in").unwrap();
        b.build().unwrap().into_parts().0
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let topo = tiny_topo();
        let a = FaultPlan::random(42, &topo, 100, 0.5);
        let b = FaultPlan::random(42, &topo, 100, 0.5);
        let c = FaultPlan::random(43, &topo, 100, 0.5);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds draw different plans");
        assert!(!a.is_empty());
        for f in a.signal_faults() {
            assert!(f.from < f.until && f.until <= 100);
            assert!((f.edge.0 as usize) < topo.edge_count());
        }
    }

    #[test]
    fn activation_window_is_half_open() {
        let plan = FaultPlan::new(1).drop_wire(EdgeId(0), Wire::Data, 5, 7);
        let compiled = plan.compile(2);
        let mut active = ActiveFaults::default();
        compiled.activate(4, &mut active);
        assert!(active.signal(0, Wire::Data).is_none());
        compiled.activate(5, &mut active);
        assert_eq!(active.signal(0, Wire::Data), Some(FaultKind::Drop));
        compiled.activate(6, &mut active);
        assert_eq!(active.signal(0, Wire::Data), Some(FaultKind::Drop));
        compiled.activate(7, &mut active);
        assert!(active.signal(0, Wire::Data).is_none());
        assert!(
            active.signal(0, Wire::Enable).is_none(),
            "other wires clean"
        );
    }

    #[test]
    fn panic_and_latency_activation() {
        let plan = FaultPlan::new(1)
            .panic_at(InstanceId(1), 3)
            .latency(InstanceId(0), 2, 4, 50);
        let compiled = plan.compile(2);
        let mut active = ActiveFaults::default();
        compiled.activate(3, &mut active);
        assert!(active.panics(1));
        assert!(!active.panics(0));
        assert_eq!(active.latency_us(0), Some(50));
        compiled.activate(4, &mut active);
        assert!(!active.panics(1));
        assert_eq!(active.latency_us(0), None);
    }

    #[test]
    fn apply_fault_transformations() {
        let w = WireWrite::Data(Res::Yes(Value::Word(5)));
        assert!(apply_fault(FaultKind::Drop, w.clone(), 0, 0, 1).is_none());
        assert_eq!(
            apply_fault(FaultKind::Stall, w.clone(), 0, 0, 1),
            Some(WireWrite::Data(Res::No))
        );
        // Corruption is deterministic and idempotent-compatible: the same
        // write corrupts to the same value.
        let c1 = apply_fault(FaultKind::Corrupt, w.clone(), 3, 7, 9).unwrap();
        let c2 = apply_fault(FaultKind::Corrupt, w.clone(), 3, 7, 9).unwrap();
        assert_eq!(c1, c2);
        assert_ne!(c1, w, "mask is non-zero");
        // Control-wire corruption flips polarity.
        assert_eq!(
            apply_fault(FaultKind::Corrupt, WireWrite::Ack(Res::Yes(())), 0, 0, 1),
            Some(WireWrite::Ack(Res::No))
        );
        assert_eq!(
            apply_fault(FaultKind::Corrupt, WireWrite::Enable(Res::No), 0, 0, 1),
            Some(WireWrite::Enable(Res::Yes(())))
        );
    }

    #[test]
    fn masking_removes_plan_entries() {
        let plan = FaultPlan::new(1)
            .drop_wire(EdgeId(0), Wire::Data, 0, 10)
            .stall_wire(EdgeId(1), Wire::Ack, 0, 10)
            .panic_at(InstanceId(0), 3)
            .panic_at(InstanceId(1), 4);
        let mut compiled = plan.compile(2);
        assert_eq!(compiled.mask_instance(0), 1);
        assert_eq!(compiled.mask_instance(0), 0, "idempotent");
        assert_eq!(compiled.mask_edge(0), 1);
        let mut active = ActiveFaults::default();
        compiled.activate(3, &mut active);
        assert!(!active.panics(0));
        assert!(active.signal(0, Wire::Data).is_none());
        assert_eq!(active.signal(1, Wire::Ack), Some(FaultKind::Stall));
        compiled.activate(4, &mut active);
        assert!(active.panics(1), "other entries survive");
    }

    #[test]
    fn shadowing_keeps_one_fault_per_wire() {
        let plan = FaultPlan::new(1)
            .drop_wire(EdgeId(0), Wire::Data, 0, 10)
            .stall_wire(EdgeId(0), Wire::Data, 0, 10);
        let compiled = plan.compile(1);
        let mut active = ActiveFaults::default();
        compiled.activate(5, &mut active);
        assert_eq!(active.signals.len(), 1, "second entry shadowed");
        assert_eq!(active.signal(0, Wire::Data), Some(FaultKind::Drop));
    }
}
