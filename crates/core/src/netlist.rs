//! Flat netlists: customized module instances plus their interconnections.
//!
//! This is the output of elaboration (the LSS front end flattens hierarchy
//! into this form) and the input of the simulator constructor. Building a
//! netlist is separate from running it so that construction errors —
//! dangling required ports, direction mismatches, over-connected ports —
//! surface before the first cycle, with structural diagnostics.

use crate::error::SimError;
use crate::module::{Dir, Module, ModuleSpec, PortId};
use crate::topology::Topology;
use std::collections::HashMap;

/// Identifier of an instance within a netlist.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u32);

/// Identifier of a connection (one three-wire bundle) within a netlist.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeId(pub u32);

/// One end of a connection: an indexed slot of a port of an instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Endpoint {
    /// The instance owning the port.
    pub inst: InstanceId,
    /// The port on that instance.
    pub port: PortId,
    /// Connection index within the port (ports scale bandwidth by taking
    /// multiple connections, paper §2.1).
    pub index: u32,
}

/// Static metadata of one connection.
#[derive(Clone, Copy, Debug)]
pub struct EdgeMeta {
    /// Sender side (an output port slot).
    pub src: Endpoint,
    /// Receiver side (an input port slot).
    pub dst: Endpoint,
}

/// Static metadata of one instance: name, spec, and per-port edge lists.
#[derive(Debug)]
pub struct InstanceMeta {
    /// Hierarchical instance name (dotted path after elaboration).
    pub name: String,
    /// The instance's customized template spec.
    pub spec: ModuleSpec,
    /// For each port (by [`PortId`] index), the edges attached, in
    /// connection-index order.
    pub edges: Vec<Vec<EdgeId>>,
}

impl InstanceMeta {
    /// Number of connections attached to a port.
    pub fn width(&self, port: PortId) -> usize {
        self.edges[port.0 as usize].len()
    }
}

/// A complete, validated netlist ready for simulator construction.
pub struct Netlist {
    /// Instance metadata, indexed by [`InstanceId`].
    pub instances: Vec<InstanceMeta>,
    /// The module behaviours, parallel to `instances`.
    pub modules: Vec<Box<dyn Module>>,
    /// Connection metadata, indexed by [`EdgeId`].
    pub edges: Vec<EdgeMeta>,
}

impl Netlist {
    /// Look up an instance id by name.
    pub fn instance_by_name(&self, name: &str) -> Option<InstanceId> {
        self.instances
            .iter()
            .position(|m| m.name == name)
            .map(|i| InstanceId(i as u32))
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when the netlist has no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Split into the layered-kernel constructor inputs: the immutable
    /// [`Topology`] (CSR wake tables, flattened port slabs) and the module
    /// behaviours. Wrap the topology in an `Arc` and hand both to
    /// [`crate::exec::Simulator::from_parts`].
    pub fn into_parts(self) -> (Topology, Vec<Box<dyn Module>>) {
        (Topology::new(self.instances, self.edges), self.modules)
    }

    /// [`Netlist::into_parts`], but with the static analyses run eagerly:
    /// the returned topology already carries its scheduling ranks and its
    /// compiled plan ([`crate::compile::CompiledPlan`]). Use this when
    /// construction time is the right place to pay for analysis — e.g.
    /// before cloning the `Arc` into several simulators, or to keep plan
    /// compilation out of the first time-step's latency.
    pub fn into_compiled_parts(self) -> (std::sync::Arc<Topology>, Vec<Box<dyn Module>>) {
        let (topo, modules) = self.into_parts();
        let topo = std::sync::Arc::new(topo);
        topo.ranks();
        topo.plan();
        (topo, modules)
    }
}

/// Incrementally builds a [`Netlist`], validating as it goes.
#[derive(Default)]
pub struct NetlistBuilder {
    instances: Vec<InstanceMeta>,
    modules: Vec<Box<dyn Module>>,
    edges: Vec<EdgeMeta>,
    by_name: HashMap<String, InstanceId>,
}

impl NetlistBuilder {
    /// Start an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an instance with a unique name. Returns its id.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        spec: ModuleSpec,
        module: Box<dyn Module>,
    ) -> Result<InstanceId, SimError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(SimError::netlist(format!(
                "duplicate instance name {name:?}"
            )));
        }
        let id = InstanceId(self.instances.len() as u32);
        let edges = vec![Vec::new(); spec.ports.len()];
        self.by_name.insert(name.clone(), id);
        self.instances.push(InstanceMeta { name, spec, edges });
        self.modules.push(module);
        Ok(id)
    }

    /// Look up a previously added instance by name.
    pub fn lookup(&self, name: &str) -> Option<InstanceId> {
        self.by_name.get(name).copied()
    }

    /// Borrow an instance's spec (e.g. to resolve port names).
    pub fn spec(&self, inst: InstanceId) -> &ModuleSpec {
        &self.instances[inst.0 as usize].spec
    }

    /// Connect the next free slot of `src`'s output port `src_port` to the
    /// next free slot of `dst`'s input port `dst_port`. Port names are
    /// resolved against the instances' specs; directions are checked.
    pub fn connect(
        &mut self,
        src: InstanceId,
        src_port: &str,
        dst: InstanceId,
        dst_port: &str,
    ) -> Result<EdgeId, SimError> {
        let sp = self.instance_meta(src)?.spec.port(src_port)?;
        let dp = self.instance_meta(dst)?.spec.port(dst_port)?;
        self.connect_ids(src, sp, dst, dp)
    }

    /// Bounds-checked instance access: a stale or foreign `InstanceId` is
    /// a caller bug, reported as a netlist error rather than a panic.
    fn instance_meta(&self, id: InstanceId) -> Result<&InstanceMeta, SimError> {
        self.instances.get(id.0 as usize).ok_or_else(|| {
            SimError::netlist(format!(
                "instance id {} out of range ({} instances)",
                id.0,
                self.instances.len()
            ))
        })
    }

    /// [`NetlistBuilder::connect`] with pre-resolved port ids.
    pub fn connect_ids(
        &mut self,
        src: InstanceId,
        src_port: PortId,
        dst: InstanceId,
        dst_port: PortId,
    ) -> Result<EdgeId, SimError> {
        let port_of = |m: &InstanceMeta, p: PortId| -> Result<(), SimError> {
            if (p.0 as usize) >= m.spec.ports.len() {
                return Err(SimError::netlist(format!(
                    "{}: port id {} out of range ({} ports)",
                    m.name,
                    p.0,
                    m.spec.ports.len()
                )));
            }
            Ok(())
        };
        {
            let sm = self.instance_meta(src)?;
            port_of(sm, src_port)?;
            let ps = sm.spec.port_spec(src_port);
            if ps.dir != Dir::Out {
                return Err(SimError::netlist(format!(
                    "{}.{} is not an output port",
                    sm.name, ps.name
                )));
            }
        }
        {
            let dm = self.instance_meta(dst)?;
            port_of(dm, dst_port)?;
            let pd = dm.spec.port_spec(dst_port);
            if pd.dir != Dir::In {
                return Err(SimError::netlist(format!(
                    "{}.{} is not an input port",
                    dm.name, pd.name
                )));
            }
        }
        let id = EdgeId(self.edges.len() as u32);
        let src_index = self.instances[src.0 as usize].edges[src_port.0 as usize].len() as u32;
        let dst_index = self.instances[dst.0 as usize].edges[dst_port.0 as usize].len() as u32;
        self.edges.push(EdgeMeta {
            src: Endpoint {
                inst: src,
                port: src_port,
                index: src_index,
            },
            dst: Endpoint {
                inst: dst,
                port: dst_port,
                index: dst_index,
            },
        });
        self.instances[src.0 as usize].edges[src_port.0 as usize].push(id);
        self.instances[dst.0 as usize].edges[dst_port.0 as usize].push(id);
        Ok(id)
    }

    /// Validate connection-count constraints and produce the netlist.
    pub fn build(self) -> Result<Netlist, SimError> {
        for inst in &self.instances {
            for (pi, port) in inst.spec.ports.iter().enumerate() {
                let n = inst.edges[pi].len() as u32;
                if n < port.min_conns {
                    return Err(SimError::netlist(format!(
                        "{}.{}: has {} connection(s), needs at least {}",
                        inst.name, port.name, n, port.min_conns
                    )));
                }
                if n > port.max_conns {
                    return Err(SimError::netlist(format!(
                        "{}.{}: has {} connection(s), allows at most {}",
                        inst.name, port.name, n, port.max_conns
                    )));
                }
            }
        }
        Ok(Netlist {
            instances: self.instances,
            modules: self.modules,
            edges: self.edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{CommitCtx, ReactCtx};

    struct Nop;
    impl Module for Nop {
        fn react(&mut self, _: &mut ReactCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
        fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
    }

    fn spec_src() -> ModuleSpec {
        ModuleSpec::new("src").output("out", 0, u32::MAX)
    }
    fn spec_sink() -> ModuleSpec {
        ModuleSpec::new("sink").input("in", 1, 2)
    }

    #[test]
    fn connect_assigns_slots_in_order() {
        let mut b = NetlistBuilder::new();
        let s = b.add("s", spec_src(), Box::new(Nop)).unwrap();
        let k = b.add("k", spec_sink(), Box::new(Nop)).unwrap();
        let e0 = b.connect(s, "out", k, "in").unwrap();
        let e1 = b.connect(s, "out", k, "in").unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.edges[e0.0 as usize].src.index, 0);
        assert_eq!(net.edges[e1.0 as usize].src.index, 1);
        assert_eq!(net.edges[e1.0 as usize].dst.index, 1);
        assert_eq!(net.instances[k.0 as usize].width(PortId(0)), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = NetlistBuilder::new();
        b.add("x", spec_src(), Box::new(Nop)).unwrap();
        assert!(b.add("x", spec_src(), Box::new(Nop)).is_err());
    }

    #[test]
    fn out_of_range_ids_are_errors_not_panics() {
        let mut b = NetlistBuilder::new();
        let s = b.add("s", spec_src(), Box::new(Nop)).unwrap();
        let k = b.add("k", spec_sink(), Box::new(Nop)).unwrap();
        let bogus = InstanceId(99);
        assert!(b.connect(bogus, "out", k, "in").is_err());
        assert!(b.connect(s, "out", bogus, "in").is_err());
        assert!(b.connect_ids(s, PortId(7), k, PortId(0)).is_err());
        assert!(b.connect_ids(s, PortId(0), k, PortId(7)).is_err());
        // The builder is still usable after the rejected calls.
        b.connect(s, "out", k, "in").unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn direction_mismatch_rejected() {
        let mut b = NetlistBuilder::new();
        let s = b.add("s", spec_src(), Box::new(Nop)).unwrap();
        let k = b.add("k", spec_sink(), Box::new(Nop)).unwrap();
        assert!(b.connect(k, "in", s, "out").is_err());
    }

    #[test]
    fn min_conns_enforced() {
        let mut b = NetlistBuilder::new();
        b.add("k", spec_sink(), Box::new(Nop)).unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn max_conns_enforced() {
        let mut b = NetlistBuilder::new();
        let s = b.add("s", spec_src(), Box::new(Nop)).unwrap();
        let k = b.add("k", spec_sink(), Box::new(Nop)).unwrap();
        for _ in 0..3 {
            b.connect(s, "out", k, "in").unwrap();
        }
        assert!(b.build().is_err());
    }

    #[test]
    fn lookup_by_name() {
        let mut b = NetlistBuilder::new();
        let s = b.add("s", spec_src(), Box::new(Nop)).unwrap();
        assert_eq!(b.lookup("s"), Some(s));
        assert_eq!(b.lookup("nope"), None);
        let k = b.add("k", spec_sink(), Box::new(Nop)).unwrap();
        b.connect(s, "out", k, "in").unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.instance_by_name("k"), Some(k));
        assert_eq!(net.len(), 2);
        assert!(!net.is_empty());
    }
}
