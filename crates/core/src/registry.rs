//! The module-template registry (paper Fig. 1: "Components for use in LSS").
//!
//! Component libraries (PCL, UPL, CCL, MPL, NIL, user-defined) register
//! their templates here; the LSS elaborator instantiates them by name with
//! per-instance [`Params`]. A template is a constructor producing a
//! customized [`ModuleSpec`] (port set may depend on parameters) plus the
//! module behaviour.

use crate::error::SimError;
use crate::module::{Dir, Module, ModuleSpec};
use crate::netlist::{InstanceId, NetlistBuilder};
use crate::params::Params;
use std::collections::BTreeMap;

/// Result of instantiating a template: its customized spec and behaviour.
pub type Instantiated = (ModuleSpec, Box<dyn Module>);

/// Template constructor signature.
pub type Ctor = Box<dyn Fn(&Params) -> Result<Instantiated, SimError> + Send + Sync>;

/// One externally visible port of a composite template instance: where
/// connections to `<instance>.<name>` actually land in the flat netlist.
#[derive(Clone, Debug)]
pub struct ExportedPort {
    /// Exported port name.
    pub name: String,
    /// The inner leaf instance owning the real port.
    pub inst: InstanceId,
    /// The real port's name on that instance.
    pub port: String,
    /// Direction, from the composite's perspective.
    pub dir: Dir,
}

/// Constructor for a composite (hierarchical) template implemented in
/// Rust: it adds sub-instances under `prefix` and reports its exported
/// ports. This is the Rust-side counterpart of an LSS `module` definition
/// (paper §2.1: new templates from interconnected instances of existing
/// ones).
pub type CompositeCtor = Box<
    dyn Fn(&Params, &mut NetlistBuilder, &str) -> Result<Vec<ExportedPort>, SimError> + Send + Sync,
>;

enum TemplateKind {
    Leaf(Ctor),
    Composite(CompositeCtor),
}

/// One registered template.
pub struct Template {
    /// Template name, as used in LSS `instance x : name`.
    pub name: String,
    /// Which library registered it ("pcl", "upl", ...). Used for the reuse
    /// census of experiment E6.
    pub library: String,
    /// One-line description for catalogs and diagnostics.
    pub doc: String,
    kind: TemplateKind,
}

impl Template {
    /// Instantiate a leaf template with the given parameters. Errors on a
    /// composite template (those are expanded with
    /// [`Template::instantiate_composite`]).
    pub fn instantiate(&self, params: &Params) -> Result<Instantiated, SimError> {
        match &self.kind {
            TemplateKind::Leaf(ctor) => ctor(params),
            TemplateKind::Composite(_) => Err(SimError::elab(format!(
                "template {:?} is composite; it expands into sub-instances",
                self.name
            ))),
        }
    }

    /// True for composite (hierarchical) templates.
    pub fn is_composite(&self) -> bool {
        matches!(self.kind, TemplateKind::Composite(_))
    }

    /// Expand a composite template into `builder` under `prefix`,
    /// returning its exported ports.
    pub fn instantiate_composite(
        &self,
        params: &Params,
        builder: &mut NetlistBuilder,
        prefix: &str,
    ) -> Result<Vec<ExportedPort>, SimError> {
        match &self.kind {
            TemplateKind::Composite(ctor) => ctor(params, builder, prefix),
            TemplateKind::Leaf(_) => Err(SimError::elab(format!(
                "template {:?} is a leaf, not composite",
                self.name
            ))),
        }
    }
}

/// Registry of all module templates available to specifications.
#[derive(Default)]
pub struct Registry {
    templates: BTreeMap<String, Template>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a leaf template. Later registrations of the same name
    /// replace earlier ones (user templates may shadow library ones).
    pub fn register(
        &mut self,
        library: &str,
        name: &str,
        doc: &str,
        ctor: impl Fn(&Params) -> Result<Instantiated, SimError> + Send + Sync + 'static,
    ) {
        self.templates.insert(
            name.to_owned(),
            Template {
                name: name.to_owned(),
                library: library.to_owned(),
                doc: doc.to_owned(),
                kind: TemplateKind::Leaf(Box::new(ctor)),
            },
        );
    }

    /// Register a composite template: a Rust-defined hierarchical module
    /// that expands into interconnected sub-instances.
    pub fn register_composite(
        &mut self,
        library: &str,
        name: &str,
        doc: &str,
        ctor: impl Fn(&Params, &mut NetlistBuilder, &str) -> Result<Vec<ExportedPort>, SimError>
            + Send
            + Sync
            + 'static,
    ) {
        self.templates.insert(
            name.to_owned(),
            Template {
                name: name.to_owned(),
                library: library.to_owned(),
                doc: doc.to_owned(),
                kind: TemplateKind::Composite(Box::new(ctor)),
            },
        );
    }

    /// Look up a template by name.
    pub fn get(&self, name: &str) -> Result<&Template, SimError> {
        self.templates.get(name).ok_or_else(|| {
            SimError::elab(format!(
                "unknown module template {name:?}; known: {}",
                self.templates
                    .keys()
                    .map(String::as_str)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
    }

    /// Instantiate a template by name.
    pub fn instantiate(&self, name: &str, params: &Params) -> Result<Instantiated, SimError> {
        self.get(name)?.instantiate(params)
    }

    /// Iterate all templates in name order (library catalog, E6 census).
    pub fn iter(&self) -> impl Iterator<Item = &Template> {
        self.templates.values()
    }

    /// Number of registered templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// True when no templates are registered.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{CommitCtx, ReactCtx};

    struct Nop;
    impl Module for Nop {
        fn react(&mut self, _: &mut ReactCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
        fn commit(&mut self, _: &mut CommitCtx<'_>) -> Result<(), SimError> {
            Ok(())
        }
    }

    fn reg_with_one() -> Registry {
        let mut r = Registry::new();
        r.register("pcl", "nop", "does nothing", |_p| {
            Ok((ModuleSpec::new("nop"), Box::new(Nop) as Box<dyn Module>))
        });
        r
    }

    #[test]
    fn register_and_instantiate() {
        let r = reg_with_one();
        let (spec, _m) = r.instantiate("nop", &Params::new()).unwrap();
        assert_eq!(spec.template, "nop");
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn unknown_template_lists_known() {
        let r = reg_with_one();
        let err = match r.instantiate("mystery", &Params::new()) {
            Err(e) => e,
            Ok(_) => panic!("expected error"),
        };
        assert!(err.to_string().contains("nop"));
    }

    #[test]
    fn later_registration_shadows() {
        let mut r = reg_with_one();
        r.register("user", "nop", "custom", |_p| {
            Ok((ModuleSpec::new("nop2"), Box::new(Nop) as Box<dyn Module>))
        });
        let (spec, _) = r.instantiate("nop", &Params::new()).unwrap();
        assert_eq!(spec.template, "nop2");
        assert_eq!(r.get("nop").unwrap().library, "user");
    }
}
