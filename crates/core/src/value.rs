//! The dynamic data type carried on LSE connections.
//!
//! The paper's component contract requires that *any* two modules can be
//! wired together without prior planning, including modules from different
//! domains (a processor pipeline stage and a network router, say). That
//! rules out a statically typed channel payload at the kernel level, so the
//! kernel moves [`Value`]s: a small dynamic type with the common scalar
//! shapes plus an [`Value::Opaque`] escape hatch for library-defined payload
//! structs (instructions, packets, coherence messages, ...).

use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// Payload trait for library-defined values carried through [`Value::Opaque`].
///
/// Implemented automatically for any `'static + Send + Sync + Debug +
/// PartialEq` type via the blanket impl, so libraries never implement it by
/// hand; they just call [`Value::wrap`].
pub trait OpaqueValue: Any + Send + Sync + fmt::Debug {
    /// Upcast to [`Any`] for downcasting back to the concrete type.
    fn as_any(&self) -> &dyn Any;
    /// Dynamic equality: true iff `other` is the same concrete type and
    /// compares equal.
    fn eq_dyn(&self, other: &dyn OpaqueValue) -> bool;
    /// Name of the concrete Rust type, for diagnostics.
    fn type_name(&self) -> &'static str;
}

impl<T> OpaqueValue for T
where
    T: Any + Send + Sync + fmt::Debug + PartialEq,
{
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn eq_dyn(&self, other: &dyn OpaqueValue) -> bool {
        other
            .as_any()
            .downcast_ref::<T>()
            .is_some_and(|o| o == self)
    }

    fn type_name(&self) -> &'static str {
        std::any::type_name::<T>()
    }
}

/// A dynamically typed value carried on a connection's data signal.
///
/// `Value` is cheap to clone: the variants that can be large (`Tuple`,
/// `Bytes`, `Str`, `Opaque`) are reference counted or otherwise shared,
/// and the scalar variants are plain 16-byte copies. The `Clone` impl is
/// written out (rather than derived) so the scalar arms are guaranteed to
/// inline into the kernel's transfer path with no `Arc` refcount traffic
/// and no allocation — the counting-allocator test in `crates/bench`
/// (`tests/alloc.rs`) holds the kernel to zero heap activity across a
/// million word transfers.
#[derive(Debug)]
pub enum Value {
    /// A pure token: presence is the information (e.g. a grant wire).
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit machine word; the workhorse scalar.
    Word(u64),
    /// A signed 64-bit integer.
    Int(i64),
    /// A double-precision float (used by statistical models).
    Float(f64),
    /// A shared tuple of values.
    Tuple(Arc<Vec<Value>>),
    /// A shared immutable string.
    Str(Arc<str>),
    /// A library-defined payload (instruction, packet, coherence message...).
    Opaque(Arc<dyn OpaqueValue>),
}

impl Clone for Value {
    #[inline]
    fn clone(&self) -> Self {
        match self {
            Value::Unit => Value::Unit,
            Value::Bool(b) => Value::Bool(*b),
            Value::Word(w) => Value::Word(*w),
            Value::Int(i) => Value::Int(*i),
            Value::Float(f) => Value::Float(*f),
            Value::Tuple(t) => Value::Tuple(Arc::clone(t)),
            Value::Str(s) => Value::Str(Arc::clone(s)),
            Value::Opaque(o) => Value::Opaque(Arc::clone(o)),
        }
    }
}

impl Value {
    /// True for the inline scalar variants (`Unit`, `Bool`, `Word`, `Int`,
    /// `Float`): cloning one is a plain copy — no sharing, no refcounts,
    /// no allocation.
    #[inline]
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            Value::Unit | Value::Bool(_) | Value::Word(_) | Value::Int(_) | Value::Float(_)
        )
    }

    /// Wrap a library-defined payload type into a `Value`.
    pub fn wrap<T>(v: T) -> Self
    where
        T: Any + Send + Sync + fmt::Debug + PartialEq,
    {
        Value::Opaque(Arc::new(v))
    }

    /// Wrap an already shared payload without another allocation.
    pub fn wrap_arc<T>(v: Arc<T>) -> Self
    where
        T: Any + Send + Sync + fmt::Debug + PartialEq,
    {
        Value::Opaque(v)
    }

    /// Borrow the payload as a concrete type, if this is an `Opaque` of that
    /// type.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        match self {
            Value::Opaque(o) => o.as_any().downcast_ref::<T>(),
            _ => None,
        }
    }

    /// The word carried by a `Word`, `Int` (reinterpreted) or `Bool` value.
    pub fn as_word(&self) -> Option<u64> {
        match self {
            Value::Word(w) => Some(*w),
            Value::Int(i) => Some(*i as u64),
            Value::Bool(b) => Some(u64::from(*b)),
            _ => None,
        }
    }

    /// The boolean carried by a `Bool` value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The float carried by a `Float` value.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Checked variant of [`Value::as_word`] that produces a structured
    /// [`SimError::Type`] naming the instance and port instead of leaving
    /// the caller to `unwrap` (and panic) on a mistyped payload. Used at
    /// the boundaries of the specialized kernels' unboxed lanes
    /// (`crate::kernel`), where a value that is not word-like cannot be
    /// lowered.
    pub fn word_checked(&self, instance: &str, port: &str) -> Result<u64, crate::error::SimError> {
        self.as_word().ok_or_else(|| {
            crate::error::SimError::type_err(format!(
                "{instance}.{port}: expected a word-like value (word, int, bool), got {}",
                self.kind()
            ))
        })
    }

    /// Checked variant of [`Value::as_bool`]; see [`Value::word_checked`].
    pub fn bool_checked(&self, instance: &str, port: &str) -> Result<bool, crate::error::SimError> {
        self.as_bool().ok_or_else(|| {
            crate::error::SimError::type_err(format!(
                "{instance}.{port}: expected a bool, got {}",
                self.kind()
            ))
        })
    }

    /// A short human-readable description of the value's dynamic type.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::Word(_) => "word",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Tuple(_) => "tuple",
            Value::Str(_) => "str",
            Value::Opaque(o) => o.type_name(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Unit, Unit) => true,
            (Bool(a), Bool(b)) => a == b,
            (Word(a), Word(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (Tuple(a), Tuple(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Opaque(a), Opaque(b)) => Arc::ptr_eq(a, b) || a.eq_dyn(b.as_ref()),
            _ => false,
        }
    }
}

impl From<u64> for Value {
    fn from(w: u64) -> Self {
        Value::Word(w)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Word(w) => write!(f, "{w}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Tuple(t) => {
                write!(f, "(")?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Opaque(o) => write!(f, "{o:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Pkt {
        dst: u32,
        len: u16,
    }

    #[test]
    fn wrap_and_downcast() {
        let v = Value::wrap(Pkt { dst: 3, len: 64 });
        let p = v.downcast_ref::<Pkt>().expect("downcast");
        assert_eq!(p.dst, 3);
        assert_eq!(p.len, 64);
        assert!(v.downcast_ref::<u32>().is_none());
    }

    #[test]
    fn opaque_equality_is_structural() {
        let a = Value::wrap(Pkt { dst: 1, len: 2 });
        let b = Value::wrap(Pkt { dst: 1, len: 2 });
        let c = Value::wrap(Pkt { dst: 9, len: 2 });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn opaque_equality_across_types_is_false() {
        #[derive(Debug, PartialEq)]
        struct Other(u32);
        let a = Value::wrap(Pkt { dst: 1, len: 2 });
        let b = Value::wrap(Other(1));
        assert_ne!(a, b);
    }

    #[test]
    fn scalar_accessors() {
        assert_eq!(Value::Word(7).as_word(), Some(7));
        assert_eq!(Value::Bool(true).as_word(), Some(1));
        assert_eq!(Value::Int(-1).as_word(), Some(u64::MAX));
        assert_eq!(Value::Unit.as_word(), None);
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::Float(0.5).as_float(), Some(0.5));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::Word(42).to_string(), "42");
        let t = Value::Tuple(Arc::new(vec![Value::Word(1), Value::Bool(false)]));
        assert_eq!(t.to_string(), "(1, false)");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3u64), Value::Word(3));
        assert_eq!(Value::from(-3i64), Value::Int(-3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::Str(Arc::from("hi")));
    }

    #[test]
    fn kind_names() {
        assert_eq!(Value::Word(0).kind(), "word");
        let v = Value::wrap(Pkt { dst: 0, len: 0 });
        assert!(v.kind().contains("Pkt"));
    }
}
