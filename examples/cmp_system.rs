//! Run the paper's Fig. 2(a) chip multiprocessor: UPL cores over MPL
//! coherent shared memory, with the CCL on-chip network carrying NI
//! traffic alongside — assembled "in a plug-and-play fashion" from the
//! component libraries.
//!
//! ```text
//! cargo run -p liberty-examples --bin cmp_system --release [cores]
//! ```

use liberty_core::prelude::*;
use liberty_examples::ObsOpts;
use liberty_systems::cmp::{cmp_simulator, CmpConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ObsOpts::parse_env()?;
    let cores: u32 = opts.rest.first().and_then(|s| s.parse().ok()).unwrap_or(8);
    let cfg = CmpConfig {
        cores,
        items: 16,
        ordering: None,
        with_noc: true,
        noc_rate: 0.05,
    };
    let (mut sim, cmp) = cmp_simulator(&cfg, opts.sched(SchedKind::Static))?;
    println!(
        "CMP: {} cores ({} producer/consumer pairs), coherent snoop bus, on-chip mesh\n",
        cmp.cores.len(),
        cmp.pairs
    );
    let obs = opts.install(&mut sim)?;
    let run = opts.run_until(&mut sim, 500_000, |_| cmp.done())?;
    let cycles = run.steps_completed;
    if !run.stopped_early() {
        opts.run(&mut sim, 64)?;
    }
    drop(sim.take_probe()); // flush --vcd / --jsonl files
    if run.stopped_early() {
        println!(
            "run stopped early ({}); skipping checks",
            run.outcome.label()
        );
        obs.finish(&sim)?;
        return Ok(());
    }
    match cmp.check_results() {
        Ok(()) => println!("all pair results correct after {cycles} cycles\n"),
        Err(e) => panic!("wrong results: {e}"),
    }
    println!("{:<8} {:>10} {:>8} {:>7}", "core", "role", "retired", "IPC");
    for (i, core) in cmp.cores.iter().enumerate() {
        let retired = sim.stats().counter(core.ids.decode, "retired");
        println!(
            "{:<8} {:>10} {:>8} {:>7.3}",
            format!("core{i}"),
            if i % 2 == 0 { "producer" } else { "consumer" },
            retired,
            retired as f64 / cycles as f64
        );
    }
    let grants = sim.stats().counter(cmp.bus, "grants");
    let inval: u64 = cmp
        .caches
        .iter()
        .map(|&c| sim.stats().counter(c, "invalidations"))
        .sum();
    println!("\nbus transactions: {grants}; snoop invalidations: {inval}");
    let noc_rx: u64 = cmp
        .noc_sinks
        .iter()
        .map(|&k| sim.stats().counter(k, "received"))
        .sum();
    let noc_lat = sim
        .stats()
        .sample_total("latency")
        .map(|s| s.mean())
        .unwrap_or(0.0);
    println!("on-chip network: {noc_rx} packets delivered, mean latency {noc_lat:.1} cycles");
    obs.finish(&sim)?;
    Ok(())
}
