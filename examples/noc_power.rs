//! Sweep a mesh network across injection rates and report latency plus
//! the Orion power decomposition (paper §3.3): dynamic power by
//! component, leakage, and the thermal estimate.
//!
//! ```text
//! cargo run -p liberty-examples --bin noc_power --release [w] [h]
//! ```

use liberty_ccl::power::{analyze, PowerCoeffs};
use liberty_ccl::topology::build_grid;
use liberty_ccl::traffic::{traffic_gen, traffic_sink, Pattern, TrafficCfg};
use liberty_core::prelude::*;

fn build(w: u32, h: u32, rate: f64, sched: SchedKind) -> Simulator {
    let mut b = NetlistBuilder::new();
    let fabric = build_grid(&mut b, "n.", w, h, 4, 1, false).unwrap();
    for id in 0..fabric.nodes {
        let (g_spec, g_mod) = traffic_gen(TrafficCfg {
            nodes: fabric.nodes,
            width: w,
            my: id,
            rate,
            pattern: Pattern::Uniform,
            flits: 4,
            seed: 20,
            ..TrafficCfg::default()
        });
        let g = b.add(format!("g{id}"), g_spec, g_mod).unwrap();
        let (ti, tp) = fabric.local_in[id as usize];
        b.connect(g, "out", ti, tp).unwrap();
        let (k_spec, k_mod) = traffic_sink(Some(id));
        let k = b.add(format!("s{id}"), k_spec, k_mod).unwrap();
        let (fo, fp) = fabric.local_out[id as usize];
        b.connect(fo, fp, k, "in").unwrap();
    }
    Simulator::new(b.build().unwrap(), sched)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = liberty_examples::ObsOpts::parse_env()?;
    let w: u32 = opts.rest.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    let h: u32 = opts.rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    println!("{w}x{h} mesh, uniform random traffic, 3000 cycles per point\n");
    println!(
        "{:>6} {:>10} {:>9} {:>11} {:>11} {:>9} {:>8}",
        "rate", "delivered", "lat(cyc)", "dynamic mW", "leakage mW", "leak %", "temp C"
    );
    let rates = [0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30];
    for (ri, rate) in rates.into_iter().enumerate() {
        let mut sim = build(w, h, rate, opts.sched(SchedKind::Static));
        // Observability flags watch the highest-load sweep point.
        let obs = (ri == rates.len() - 1)
            .then(|| opts.install(&mut sim))
            .transpose()?;
        let run = opts.run(&mut sim, 3000)?;
        if run.stopped_early() {
            println!("sweep stopped early ({})", run.outcome.label());
            if let Some(obs) = obs {
                drop(sim.take_probe());
                obs.finish(&sim)?;
            }
            return Ok(());
        }
        let delivered = sim.stats().counter_total("received");
        let lat = sim
            .stats()
            .sample_total("latency")
            .map(|s| s.mean())
            .unwrap_or(0.0);
        let p = analyze(
            &sim.instance_names().collect::<Vec<_>>(),
            &sim.report(),
            sim.now(),
            4.0,
            &PowerCoeffs::default(),
        );
        println!(
            "{:>6.2} {:>10} {:>9.1} {:>11.1} {:>11.1} {:>8.0}% {:>8.1}",
            rate,
            delivered,
            lat,
            p.total_dynamic_mw,
            p.total_leakage_mw,
            100.0 * p.leakage_fraction,
            p.temp_c
        );
        if let Some(obs) = obs {
            drop(sim.take_probe()); // flush --vcd / --jsonl files
            obs.finish(&sim)?;
        }
    }
    println!("\nshapes to notice: latency grows with load; leakage share shrinks as");
    println!("dynamic power grows; the thermal estimate follows total power.");
    Ok(())
}
