//! Run the paper's Fig. 2(b) sensor network: per node a GP core and a
//! DSP core on a coherent node bus, a radio NI with CSMA backoff, and a
//! shared wireless channel back to the base station.
//!
//! ```text
//! cargo run -p liberty-examples --bin sensor_field --release [nodes]
//! ```

use liberty_core::prelude::*;
use liberty_examples::ObsOpts;
use liberty_systems::programs;
use liberty_systems::sensor::{sensor_simulator, SensorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ObsOpts::parse_env()?;
    let nodes: u32 = opts.rest.first().and_then(|s| s.parse().ok()).unwrap_or(5);
    let cfg = SensorConfig {
        nodes,
        samples: 8,
        loss: 0.0,
        external_base: false,
    };
    let (mut sim, net) = sensor_simulator(&cfg, opts.sched(SchedKind::Static))?;
    let base = net.base.expect("base station");
    println!("{nodes} sensor nodes, one shared wireless channel, base at station 0\n");
    let obs = opts.install(&mut sim)?;
    let run = opts.run_until(&mut sim, 500_000, |st| {
        st.counter(base, "received") >= u64::from(nodes)
    })?;
    let cycles = run.steps_completed;
    drop(sim.take_probe()); // flush --vcd / --jsonl files
    if run.stopped_early() {
        println!(
            "run stopped early ({}); partial statistics follow",
            run.outcome.label()
        );
    }
    println!(
        "base received {}/{} reduced samples in {cycles} cycles",
        sim.stats().counter(base, "received"),
        nodes
    );
    println!(
        "air: {} delivered, {} collision cycles",
        sim.stats().counter(net.air, "delivered"),
        sim.stats().counter(net.air, "collisions"),
    );
    let backoffs: u64 = net
        .radios
        .iter()
        .map(|&r| sim.stats().counter(r, "backoffs"))
        .sum();
    println!("radios performed {backoffs} CSMA backoffs");
    if let Some(lat) = sim.stats().get_sample(base, "latency") {
        println!(
            "air latency (ready-to-delivered): min {:.0}, mean {:.1}, max {:.0} cycles",
            lat.min,
            lat.mean(),
            lat.max
        );
    }
    println!(
        "\neach sample is the DSP core's reduction: sum(2i+5, i<8) = {}",
        programs::expected_sum(8)
    );
    obs.finish(&sim)?;
    Ok(())
}
