//! Load and run any LSS specification file against the full component
//! registry — the paper's Fig. 1 as a command-line tool.
//!
//! ```text
//! cargo run -p liberty-examples --bin lss_file -- specs/pipeline.lss [cycles] \
//!     [--trace] [--vcd out.vcd] [--jsonl out.jsonl] [--profile] [--metrics-out m.json]
//! ```
//!
//! Prints the construction census and every non-zero statistic the
//! components published.
//!
//! With `--sweep KEY=LO..HI` / `--seeds N` the example becomes an
//! ensemble driver: a grid of replicas runs under supervision into
//! `--sweep-dir` (manifest + per-replica streams + aggregate CSV), and
//! an interrupted sweep continues with `--resume-manifest DIR`:
//!
//! ```text
//! lss_file specs/pipeline.lss 200 --sweep depth=1..4 --seeds 3 \
//!     --sweep-dir out --threads 4
//! lss_file specs/pipeline.lss --resume-manifest out --threads 4
//! ```

use liberty_core::prelude::*;
use liberty_examples::ObsOpts;
use liberty_lss::build_simulator;
use liberty_systems::full_registry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ObsOpts::parse_env()?;
    let mut args = opts.rest.iter().cloned();
    let path = args
        .next()
        .unwrap_or_else(|| "specs/pipeline.lss".to_owned());
    let cycles: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(100);

    let src = std::fs::read_to_string(&path)?;
    let registry = full_registry();

    if opts.sweep_requested() {
        let report = opts.run_lss_sweep(
            &src,
            &registry,
            "main",
            &Params::new(),
            SchedKind::Static,
            cycles,
        )?;
        if report.failed > 0 {
            return Err(format!("{} replica(s) failed", report.failed).into());
        }
        if !report.complete() {
            // Interrupted (SIGINT / budget): resumable, but not a success.
            std::process::exit(2);
        }
        return Ok(());
    }

    let (mut sim, report) = build_simulator(
        &src,
        &registry,
        "main",
        &Params::new(),
        opts.sched(SchedKind::Static),
    )?;
    println!(
        "{path}: constructed {} instances / {} connections from {} template kinds",
        report.leaf_instances,
        report.edges,
        report.template_uses.len()
    );
    for (t, n) in &report.template_uses {
        println!("  {n:>4} x {t}");
    }

    let obs = opts.install(&mut sim)?;
    let run = opts.run(&mut sim, cycles)?;
    drop(sim.take_probe()); // flush --vcd / --jsonl files
    println!("\nran {} cycles; statistics:", run.steps_completed);
    let rep = sim.report();
    for (key, v) in &rep.counters {
        println!("  {key} = {v}");
    }
    for (key, s) in &rep.samples {
        println!(
            "  {key}: mean {:.2} (min {:.0}, max {:.0}, n {})",
            s.mean(),
            s.min,
            s.max,
            s.n
        );
    }
    for (key, h) in &rep.histograms {
        println!("  {key}: histogram, n {} mean {:.2}", h.count(), h.mean());
        print!("{}", h.render());
    }
    obs.finish(&sim)?;
    Ok(())
}
