//! Iteratively refine a processor model (paper §2.2): start minimal,
//! then add buffers, a branch predictor, and a data cache — every stage
//! is a complete, working simulator retiring identical architectural
//! state, and each refinement changes only the timing.
//!
//! ```text
//! cargo run -p liberty-examples --bin processor --release [program]
//! ```
//! where `program` is a workload-catalog name (default `branchy`).

use liberty_core::prelude::*;
use liberty_upl::core::{core_simulator, CoreConfig};
use liberty_upl::emu::Machine;
use liberty_upl::program;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = liberty_examples::ObsOpts::parse_env()?;
    let name = opts
        .rest
        .first()
        .cloned()
        .unwrap_or_else(|| "branchy".into());
    let prog = Arc::new(program::by_name(&name).unwrap_or_else(|| {
        panic!(
            "unknown program {name:?}; try: count fib matmul pointer_chase branchy memcpy dotprod"
        )
    }));

    // Golden reference.
    let mut emu = Machine::new(&prog);
    emu.run(&prog, 50_000_000)?;
    println!("workload {:?}: {} instructions\n", prog.name, emu.retired);

    let stages: Vec<(&str, CoreConfig)> = vec![
        ("minimal in-order core      ", CoreConfig::default()),
        (
            "+ deeper pipeline buffers  ",
            CoreConfig {
                fetch_q: 4,
                iw: 4,
                rob: 8,
                ..CoreConfig::default()
            },
        ),
        (
            "+ bimodal branch predictor ",
            CoreConfig {
                fetch_q: 4,
                iw: 4,
                rob: 8,
                predictor: Some(Params::new().with("kind", "bimodal")),
                ..CoreConfig::default()
            },
        ),
        (
            "+ gshare predictor         ",
            CoreConfig {
                fetch_q: 4,
                iw: 4,
                rob: 8,
                predictor: Some(Params::new().with("kind", "gshare")),
                ..CoreConfig::default()
            },
        ),
        (
            "+ D-cache over slow DRAM   ",
            CoreConfig {
                fetch_q: 4,
                iw: 4,
                rob: 8,
                predictor: Some(Params::new().with("kind", "gshare")),
                cache: Some(Params::new().with("sets", 32i64).with("ways", 2i64)),
                mem_latency: 12,
                ..CoreConfig::default()
            },
        ),
    ];

    println!(
        "{:<30} {:>9} {:>7} {:>11} {:>9}",
        "stage", "cycles", "IPC", "mispredicts", "D$ hit%"
    );
    let last = stages.len() - 1;
    for (si, (name, cfg)) in stages.into_iter().enumerate() {
        let (mut sim, handles) = core_simulator(prog.clone(), &cfg, opts.sched(SchedKind::Static))?;
        // Observability flags watch the most refined configuration.
        let obs = (si == last).then(|| opts.install(&mut sim)).transpose()?;
        let arch = handles.arch.clone();
        let run = opts.run_until(&mut sim, 10_000_000, move |_| arch.is_halted())?;
        if run.stopped_early() {
            println!(
                "run stopped early ({}); skipping checks",
                run.outcome.label()
            );
            if let Some(obs) = obs {
                drop(sim.take_probe());
                obs.finish(&sim)?;
            }
            return Ok(());
        }
        let cycles = run.steps_completed;
        // Drain outstanding writebacks, as `run_to_halt` would.
        opts.run(&mut sim, 16)?;
        assert!(handles.arch.is_halted(), "did not halt");
        // The refinement changed only timing, never meaning:
        assert_eq!(&*handles.arch.regs.lock(), &emu.regs, "architectural state");
        let retired = sim.stats().counter(handles.ids.decode, "retired");
        assert_eq!(retired, emu.retired);
        let mis = sim.stats().counter(handles.ids.execute, "mispredicts");
        let hitrate = handles
            .ids
            .cache
            .map(|c| {
                let h = sim.stats().counter(c, "read_hits") as f64;
                let m = sim.stats().counter(c, "read_misses") as f64;
                if h + m > 0.0 {
                    format!("{:.0}", 100.0 * h / (h + m))
                } else {
                    "-".to_string()
                }
            })
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<30} {:>9} {:>7.3} {:>11} {:>9}",
            name,
            cycles,
            retired as f64 / cycles as f64,
            mis,
            hitrate
        );
        if let Some(obs) = obs {
            drop(sim.take_probe()); // flush --vcd / --jsonl files
            obs.finish(&sim)?;
        }
    }
    println!("\nall stages retired identical architectural state");
    Ok(())
}
