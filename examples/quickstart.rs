//! Quickstart: the paper's Fig. 1 in one page.
//!
//! Write an LSS specification, let the simulator constructor weave the
//! module templates together, run the executable simulator, read stats.
//!
//! ```text
//! cargo run -p liberty-examples --bin quickstart
//! cargo run -p liberty-examples --bin quickstart -- --vcd out.vcd --profile
//! ```

use liberty_core::prelude::*;
use liberty_examples::ObsOpts;
use liberty_lss::build_simulator;
use liberty_systems::full_registry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ObsOpts::parse_env()?;
    // 1. A structural specification: a generator feeding a queue feeding
    //    two consumers through a tee. No control logic is written — the
    //    three-signal contract and the default control semantics handle
    //    flow control.
    let lss = r#"
        module main {
            param items = 12;
            instance gen  : seq_source { count = items; };
            instance q    : queue { depth = 4; };
            instance copy : tee { policy = "all"; };
            instance a    : sink;
            instance b    : sink;
            connect gen.out  -> q.in;
            connect q.out    -> copy.in;
            connect copy.out -> a.in;
            connect copy.out -> b.in;
        }
    "#;

    // 2. Construct the simulator (parse -> elaborate -> weave).
    let registry = full_registry();
    let (mut sim, report) = build_simulator(
        lss,
        &registry,
        "main",
        &Params::new(),
        opts.sched(SchedKind::Static),
    )?;
    println!(
        "constructed: {} instances, {} connections",
        report.leaf_instances, report.edges
    );

    // 3. Run it (with any requested probes watching, under run
    //    governance: Ctrl-C / --max-steps / --deadline stop the run
    //    cleanly with a report instead of killing the process).
    let obs = opts.install(&mut sim)?;
    let run = opts.run(&mut sim, 40)?;

    // 4. Read the statistics the components published.
    let a = sim.instance_by_name("a").expect("instance a");
    let b = sim.instance_by_name("b").expect("instance b");
    let q = sim.instance_by_name("q").expect("instance q");
    println!("sink a received : {}", sim.stats().counter(a, "received"));
    println!("sink b received : {}", sim.stats().counter(b, "received"));
    println!(
        "queue occupancy : mean {:.2}, max {}",
        sim.stats()
            .get_sample(q, "occupancy")
            .map(|s| s.mean())
            .unwrap_or(0.0),
        sim.stats()
            .get_sample(q, "occupancy")
            .map(|s| s.max)
            .unwrap_or(0.0),
    );
    if run.stopped_early() {
        println!(
            "run stopped early ({}); skipping checks",
            run.outcome.label()
        );
    } else {
        assert_eq!(sim.stats().counter(a, "received"), 12);
        assert_eq!(sim.stats().counter(b, "received"), 12);
        println!("ok: both consumers saw the full stream");
    }
    drop(sim.take_probe()); // flush --vcd / --jsonl files
    obs.finish(&sim)?;
    Ok(())
}
