//! The programmable NIC end to end (paper §3.5): real LIR firmware,
//! assembled by the UPL assembler, runs on a structural UPL core inside
//! the NIC. Frames arrive over the Ethernet model, the MAC assist lands
//! them in NIC SRAM, the firmware checksums each payload and programs the
//! host-DMA assist, and payloads appear in host memory across the PCI
//! model. A frame tap on the wire captures the I/O trace.
//!
//! ```text
//! cargo run -p liberty-examples --bin prognic --release
//! ```

use liberty_core::prelude::*;
use liberty_nil::eth::{ether, EthFrame};
use liberty_nil::firmware::{self, HOST_RING, HOST_SLOT};
use liberty_nil::nicdev::Words;
use liberty_nil::pci::{pci_bus, pci_mem};
use liberty_nil::prognic::build_prognic;
use liberty_nil::tap::frame_tap;
use liberty_pcl::{sink, source};
use std::sync::Arc;

fn frame(id: u64, words: Vec<u64>) -> Value {
    EthFrame {
        src: 0,
        dst: 1,
        len_bytes: (words.len() * 8) as u32,
        id,
        created: 0,
        payload: Some(Value::wrap(Words(words))),
    }
    .into_value()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = liberty_examples::ObsOpts::parse_env()?;
    let mut b = NetlistBuilder::new();
    let (e_spec, e_mod) = ether(&Params::new())?;
    let eth = b.add("eth", e_spec, e_mod)?;

    // The peer host sending frames, with a capture tap on its uplink.
    let payloads: Vec<Vec<u64>> = vec![vec![10, 20, 30], vec![4, 5, 6, 7], vec![1000], vec![9; 6]];
    let script: Vec<Value> = payloads
        .iter()
        .enumerate()
        .map(|(i, p)| frame(i as u64, p.clone()))
        .collect();
    let (p_spec, p_mod) = source::script(script);
    let peer = b.add("peer", p_spec, p_mod)?;
    let (t_spec, t_mod, trace) = frame_tap();
    let tap = b.add("tap", t_spec, t_mod)?;
    b.connect(peer, "out", tap, "in")?;
    b.connect(tap, "out", eth, "tx")?;
    let (pk_spec, pk_mod, _h) = sink::collecting();
    let peer_rx = b.add("peer_rx", pk_spec, pk_mod)?;
    b.connect(eth, "rx", peer_rx, "in")?;

    // PCI: the NIC is a master; host memory is target 0.
    let (bus_spec, bus_mod) = pci_bus(&Params::new())?;
    let pci = b.add("pci", bus_spec, bus_mod)?;
    let (hm_spec, hm_mod, host_mem) = pci_mem(&Params::new())?;
    let hm = b.add("hostmem", hm_spec, hm_mod)?;

    // The NIC itself, running store-and-forward firmware.
    let nic = build_prognic(&mut b, "nic.", 1, Arc::new(firmware::store_and_forward()))?;
    b.connect(nic.eth_tx.0, nic.eth_tx.1, eth, "tx")?;
    b.connect(eth, "rx", nic.eth_rx.0, nic.eth_rx.1)?;
    b.connect(nic.pci_req.0, nic.pci_req.1, pci, "mreq")?;
    b.connect(pci, "mresp", nic.pci_resp.0, nic.pci_resp.1)?;
    b.connect(pci, "treq", hm, "req")?;
    b.connect(hm, "resp", pci, "tresp")?;

    let mut sim = Simulator::new(b.build()?, opts.sched(SchedKind::Static));
    let obs = opts.install(&mut sim)?;
    let n = payloads.len() as u64;
    let dev = nic.dev;
    let run = opts.run_until(&mut sim, 60_000, |st| {
        st.counter(dev, "dmas_completed") >= n
    })?;
    drop(sim.take_probe()); // flush --vcd / --jsonl files
    if run.stopped_early() {
        println!(
            "run stopped early ({}); skipping checks",
            run.outcome.label()
        );
        obs.finish(&sim)?;
        return Ok(());
    }
    let cycles = run.steps_completed;

    println!("programmable NIC serviced {n} frames in {cycles} cycles\n");
    println!(
        "firmware instructions retired: {}",
        sim.stats().counter(nic.core.ids.decode, "retired")
    );
    println!("PCI bursts: {}", sim.stats().counter(pci, "grants"));
    println!("captured trace entries: {}\n", trace.lock().len());
    let host = host_mem.lock();
    for (k, p) in payloads.iter().enumerate() {
        let base = (HOST_RING + k as u64 * HOST_SLOT) as usize;
        let got = &host[base..base + p.len()];
        let sum: u64 = p.iter().sum();
        println!("frame {k}: host ring slot {base} = {got:?} (checksum {sum})");
        assert_eq!(got, &p[..], "payload mismatch");
    }
    println!("\nall payloads delivered to host memory; trace captured for replay");
    obs.finish(&sim)?;
    Ok(())
}
