//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Property tests in this workspace keep their upstream-compatible source
//! form (`proptest! { fn p(x in strategy) { ... } }`); this crate executes
//! them as deterministic randomized tests: a fixed-seed generator drives
//! each strategy for `ProptestConfig::cases` iterations. Differences from
//! upstream: no shrinking (the failing input is printed instead), no
//! persisted regression files, and `prop_assert!` panics rather than
//! returning `TestCaseError`.

use std::fmt::Debug;
use std::rc::Rc;

/// Deterministic test-case generator (splitmix64 core).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The fixed-seed generator used by the [`proptest!`] harness.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x243F_6A88_85A3_08D3,
        }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod test_runner {
    //! Runner configuration, mirroring `proptest::test_runner`.
    pub use super::TestRng;

    /// Subset of upstream `ProptestConfig` honoured by the stand-in.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.
    use super::*;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `f` (rejection sampling; gives up
        /// after a bounded number of attempts like upstream).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }

        /// Type-erase into a clonable boxed strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }

        /// Build a recursive strategy: `self` is the leaf case and
        /// `recurse` wraps an inner strategy one level deeper, up to
        /// `depth` levels (the size/branch hints are accepted for source
        /// compatibility and ignored).
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut cur = self.boxed();
            for _ in 0..depth {
                cur = recurse(cur.clone()).boxed();
            }
            cur
        }
    }

    /// Clonable, type-erased strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter gave up: {}", self.whence);
        }
    }

    /// Uniform choice among boxed alternatives ([`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi - lo + 1) as u64;
                    (lo + rng.below(width) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// `&str` strategies generate strings from a small regex subset:
    /// literals, `[a-z0-9_]` classes, and `{m,n}` / `*` / `+` / `?`
    /// quantifiers — enough for the identifier-shaped patterns used in
    /// this workspace.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal character.
            let mut alphabet: Vec<char> = Vec::new();
            match chars[i] {
                '[' => {
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (a, b) = (chars[i], chars[i + 2]);
                            alphabet.extend((a..=b).filter(|c| c.is_ascii()));
                            i += 3;
                        } else {
                            alphabet.push(chars[i]);
                            i += 1;
                        }
                    }
                    i += 1; // skip ']'
                }
                '\\' if i + 1 < chars.len() => {
                    alphabet.push(chars[i + 1]);
                    i += 2;
                }
                c => {
                    alphabet.push(c);
                    i += 1;
                }
            }
            // Optional quantifier.
            let (lo, hi) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((a, b)) => (
                                a.trim().parse::<usize>().unwrap_or(0),
                                b.trim().parse::<usize>().unwrap_or(8),
                            ),
                            None => {
                                let n = body.trim().parse::<usize>().unwrap_or(1);
                                (n, n)
                            }
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                let k = rng.below(alphabet.len().max(1) as u64) as usize;
                if let Some(&c) = alphabet.get(k) {
                    out.push(c);
                }
            }
        }
        out
    }

    macro_rules! tuple_strategy {
        ($($S:ident/$idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

    /// Types with a canonical [`any`] strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<u8>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).
    use super::strategy::Strategy;
    use super::TestRng;

    /// Size specification accepted by [`vec`]: an exact length or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample::select`).
    use super::strategy::Strategy;
    use super::TestRng;
    use std::fmt::Debug;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Choose uniformly among `options` (must be non-empty).
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select { options }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// The `prop::` namespace used inside tests (`prop::collection::vec`, ...).
pub mod prop {
    pub use super::collection;
    pub use super::sample;
}

pub mod prelude {
    //! Everything a property-test file needs in scope.
    pub use super::prop;
    pub use super::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use super::test_runner::ProptestConfig;
    pub use super::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declare property tests. Each case runs `ProptestConfig::cases` times
/// with inputs drawn from the given strategies; a failing case prints its
/// inputs and panics (no shrinking in the offline stand-in).
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic();
            for _case in 0..cfg.cases {
                let ($($pat,)*) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut rng),)*
                );
                $body
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Assert inside a property (panics on failure in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Choose uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..200 {
            let v = (0u8..4, 1usize..5).generate(&mut rng);
            assert!(v.0 < 4 && (1..5).contains(&v.1));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::deterministic();
        for _ in 0..100 {
            let v = prop::collection::vec(0u8..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn string_pattern_identifier() {
        let mut rng = TestRng::deterministic();
        for _ in 0..100 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "bad ident: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        #[derive(Clone, Debug)]
        enum E {
            // The leaf payload only exercises generation; it is never read.
            #[allow(dead_code)]
            L(u8),
            N(Box<E>),
        }
        fn depth(e: &E) -> usize {
            match e {
                E::L(_) => 0,
                E::N(i) => 1 + depth(i),
            }
        }
        let mut rng = TestRng::deterministic();
        let strat = (0u8..5).prop_map(E::L).prop_recursive(3, 8, 2, |inner| {
            prop_oneof![inner.clone().prop_map(|e| E::N(Box::new(e))), inner]
        });
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn harness_macro_smoke(x in 0u32..10, ys in prop::collection::vec(any::<bool>(), 3)) {
            prop_assert!(x < 10);
            prop_assert_eq!(ys.len(), 3);
        }
    }
}
