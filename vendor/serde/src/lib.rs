//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The workspace only *tags* types as serializable (no wire format is ever
//! produced — reports are rendered to markdown by `liberty-bench`), so the
//! traits are markers and the derives are no-ops. Swapping the real serde
//! back in requires no source changes in the workspace.

/// Marker for types whose values can be serialized.
pub trait Serialize {}

/// Marker for types whose values can be deserialized.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_markers!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}
