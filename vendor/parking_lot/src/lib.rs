//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of the `parking_lot` API it actually uses
//! (see `vendor/README.md`). Semantics match `parking_lot` where the two
//! differ from `std`: locks are not poisoned — a panic while holding a
//! guard leaves the lock usable.

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is free.
    /// Unlike `std`, recovers the guard even if a previous holder panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value in a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
