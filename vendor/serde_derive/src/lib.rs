//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The stand-in's traits are markers, so the derive only has to name the
//! type. Supports plain (non-generic) structs and enums, which covers
//! every derived type in this workspace; a generic type fails to compile
//! here rather than silently misbehaving.

use proc_macro::{TokenStream, TokenTree};

/// Find the type name: the identifier following the `struct`/`enum`
/// keyword, skipping attributes and visibility.
fn type_name(input: &TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input.clone() {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return s;
                }
                if s == "struct" || s == "enum" {
                    saw_kw = true;
                }
            }
            _ => continue,
        }
    }
    panic!("serde stub derive: no struct/enum name found");
}

fn assert_not_generic(input: &TokenStream, name: &str) {
    // A `<` immediately after the type name means generics, which the
    // stub derive does not support.
    let mut prev_was_name = false;
    for tt in input.clone() {
        match tt {
            TokenTree::Ident(id) => prev_was_name = id.to_string() == name,
            TokenTree::Punct(p) => {
                if prev_was_name && p.as_char() == '<' {
                    panic!("serde stub derive: generic type {name} unsupported");
                }
                prev_was_name = false;
            }
            _ => prev_was_name = false,
        }
    }
}

/// Derive the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    assert_not_generic(&input, &name);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde stub derive: emit Serialize impl")
}

/// Derive the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    assert_not_generic(&input, &name);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde stub derive: emit Deserialize impl")
}
