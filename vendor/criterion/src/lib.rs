//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Runs each benchmark `sample_size` times and prints the median and min
//! wall-clock time per iteration — no statistical analysis, plotting, or
//! baseline comparison. Source-compatible with the subset of the criterion
//! API the workspace's benches use.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; accepted for source
/// compatibility (the stand-in always runs setup per iteration).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier of a parameterized benchmark (`group/function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The measurement driver handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Measure `routine` on fresh inputs from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, T>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> T,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

/// Top-level harness state (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.criterion.sample_size,
            f,
        );
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.criterion.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Close the group (no-op in the stand-in).
    pub fn finish(self) {}
}

fn run_one(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    b.samples.sort_unstable();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    let min = b.samples.first().copied().unwrap_or_default();
    println!(
        "bench {label:<48} median {:>12.3?}  min {:>12.3?}  ({} samples)",
        median,
        min,
        b.samples.len()
    );
}

/// Declare a benchmark group (both the simple and the configured form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("g");
        let mut runs = 0;
        g.bench_function("f", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default().sample_size(4);
        let mut made = 0;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    made += 1;
                    vec![made]
                },
                |v| v[0] * 2,
                BatchSize::SmallInput,
            )
        });
        assert_eq!(made, 4);
    }
}
