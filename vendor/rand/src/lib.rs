//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements exactly the API surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` / `gen_bool` / `gen` —
//! on top of a splitmix64/xoshiro-style generator. The streams are *not*
//! bit-compatible with upstream `rand`; everything in this repo that
//! compares two simulations draws from this same implementation, so all
//! seeded comparisons remain deterministic and self-consistent.

use std::ops::Range;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }

    /// Uniform draw of a [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: splitmix64-seeded xorshift64*.
    /// Deterministic per seed; not cryptographic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scramble so nearby seeds give unrelated streams.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng {
                state: (z ^ (z >> 31)).max(1),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna): passes basic uniformity needs here.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let s = r.gen_range(-5..5i64);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "suspicious bias: {hits}");
    }
}
